open Tensor

type corpus_kind = Sst | Yelp | Sst_small | Vision_task

type entry = {
  name : string;
  corpus : corpus_kind;
  cfg : Nn.Model.config;
  epochs : int;
  lr : float;
  embed_noise : float;
}

(* ---------------- corpora (deterministic, cached) ---------------- *)

let sst_seed = 1001
let yelp_seed = 1002
let sst_small_seed = 1003
let vision_seed = 1004
let synonym_seed = 1005

let cache f =
  let r = ref None in
  fun () ->
    match !r with
    | Some v -> v
    | None ->
        let v = f () in
        r := Some v;
        v

let sst_corpus =
  cache (fun () ->
      Text.Corpus.generate ~vocab_size:64 ~train_size:1600 ~test_size:200
        (Rng.create sst_seed) Text.Corpus.Sst_like)

let yelp_corpus =
  cache (fun () ->
      Text.Corpus.generate ~vocab_size:96 ~train_size:1600 ~test_size:200
        (Rng.create yelp_seed) Text.Corpus.Yelp_like)

let sst_small_corpus =
  cache (fun () ->
      Text.Corpus.generate ~vocab_size:48 ~train_size:1200 ~test_size:200
        ~max_len:8 (Rng.create sst_small_seed) Text.Corpus.Sst_like)

let corpus_of = function
  | Sst -> sst_corpus ()
  | Yelp -> yelp_corpus ()
  | Sst_small -> sst_small_corpus ()
  | Vision_task -> invalid_arg "Zoo.corpus_of: vision task has no corpus"

let vision_data = cache (fun () -> Vision.Images.generate (Rng.create vision_seed) 600)

let synonyms_for model corpus =
  let d = (Nn.Model.config model).Nn.Model.d_model in
  Text.Synonyms.generate (Rng.create synonym_seed) corpus ~dim:d

(* ---------------- the zoo ---------------- *)

let nlp_cfg ~corpus ~d ~h layers =
  let c = corpus_of corpus in
  {
    Nn.Model.default_config with
    Nn.Model.vocab_size = Array.length c.Text.Corpus.vocab;
    max_len = c.Text.Corpus.max_len;
    d_model = d;
    d_hidden = h;
    heads = 4;
    layers;
  }

let depth_epochs m = if m >= 12 then 8 else if m >= 6 then 8 else 6

let nlp_entry ?(embed_noise = 0.0) ?(divide_std = false) ~corpus ~d ~h ~prefix m
    =
  {
    name = Printf.sprintf "%s_%d" prefix m;
    corpus;
    cfg = { (nlp_cfg ~corpus ~d ~h m) with Nn.Model.divide_std };
    epochs = depth_epochs m;
    (* The deep wide stack needs a gentler peak rate to stay stable. *)
    lr = (if m >= 12 && d >= 48 then 8e-4 else 2e-3);
    embed_noise;
  }

let vit_entry =
  {
    name = "vit_1";
    corpus = Vision_task;
    cfg =
      {
        Nn.Model.default_config with
        Nn.Model.vocab_size = 1;
        max_len = 16;
        d_model = 32;
        d_hidden = 64;
        heads = 4;
        layers = 1;
        patch_dim = Some 49;
      };
    epochs = 6;
    lr = 2e-3;
    embed_noise = 0.0;
  }

let all =
  List.concat
    [
      List.map (nlp_entry ~corpus:Sst ~d:24 ~h:24 ~prefix:"sst") [ 3; 6; 12 ];
      List.map (nlp_entry ~corpus:Yelp ~d:24 ~h:24 ~prefix:"yelp") [ 3; 6; 12 ];
      List.map (nlp_entry ~corpus:Sst ~d:48 ~h:96 ~prefix:"wide") [ 3; 6; 12 ];
      List.map (nlp_entry ~corpus:Sst_small ~d:16 ~h:16 ~prefix:"small") [ 3; 6; 12 ];
      List.map
        (nlp_entry ~divide_std:true ~corpus:Sst ~d:24 ~h:24 ~prefix:"std")
        [ 3; 6; 12 ];
      [ nlp_entry ~embed_noise:0.08 ~corpus:Sst ~d:24 ~h:24 ~prefix:"robust" 3 ];
      [ vit_entry ];
    ]

let entry name = List.find (fun e -> e.name = name) all

let data_dir = ref "data"
let path e = Filename.concat !data_dir (e.name ^ ".model")

(* Deterministic per-entry training seed. *)
let train_seed e = 7000 + Hashtbl.hash e.name mod 1000

let train_entry ?(log = fun _ -> ()) e =
  let rng = Rng.create (train_seed e) in
  let model = Nn.Model.create rng e.cfg in
  (match e.corpus with
  | Vision_task ->
      let imgs = vision_data () in
      let train = List.filteri (fun i _ -> i < 400) imgs in
      let data =
        List.map
          (fun (i : Vision.Images.image) ->
            Nn.Train.matrix_example (Vision.Images.patches i) i.Vision.Images.label)
          train
      in
      Nn.Train.train_model
        ~log:(fun r ->
          log
            (Printf.sprintf "%s epoch %d: loss %.4f acc %.3f" e.name r.Nn.Train.epoch
               r.Nn.Train.loss r.Nn.Train.train_acc))
        ~epochs:e.epochs ~batch:8 ~lr:e.lr ~rng model data
  | _ ->
      let c = corpus_of e.corpus in
      let data = Text.Corpus.examples c.Text.Corpus.train in
      Nn.Train.train_model
        ~log:(fun r ->
          log
            (Printf.sprintf "%s epoch %d: loss %.4f acc %.3f" e.name r.Nn.Train.epoch
               r.Nn.Train.loss r.Nn.Train.train_acc))
        ~epochs:e.epochs ~batch:8 ~lr:e.lr ~embed_noise:e.embed_noise ~rng model
        data);
  Nn.Model.save (path e) model;
  model

let load_or_train ?log name =
  let e = entry name in
  let p = path e in
  if Sys.file_exists p then Nn.Model.load p else train_entry ?log e

let test_accuracy model e =
  match e.corpus with
  | Vision_task ->
      let imgs = vision_data () in
      let test = List.filteri (fun i _ -> i >= 400) imgs in
      let data =
        List.map
          (fun (i : Vision.Images.image) ->
            Nn.Train.matrix_example (Vision.Images.patches i) i.Vision.Images.label)
          test
      in
      Nn.Train.accuracy model data
  | k ->
      let c = corpus_of k in
      Nn.Train.accuracy model (Text.Corpus.examples c.Text.Corpus.test)
