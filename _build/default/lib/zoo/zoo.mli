(** The experiment model zoo.

    Every network the evaluation needs — the SST-like and Yelp-like
    Transformer stacks at 3/6/12 layers, the wide variants, the
    downscaled variants used against CROWN-Backward, the standard-
    layer-norm variants, the noise-augmented "certifiably trained"
    3-layer model, and the Vision Transformer — is described here once,
    with its corpus, architecture and training recipe, so [bin/train]
    and the benchmark harness agree exactly on what they run.

    Models are persisted under [data/] and trained on demand when the
    file is missing; corpora and synonym dictionaries are regenerated
    deterministically from fixed seeds. *)

type corpus_kind = Sst | Yelp | Sst_small | Vision_task
(** [Sst_small] is the short-sentence corpus used wherever
    CROWN-Backward participates (its cost grows steeply with sequence
    length — the paper equally had to shrink networks to fit the
    baseline in memory, Section 6.3). *)

type entry = {
  name : string;  (** file stem under [data/] *)
  corpus : corpus_kind;
  cfg : Nn.Model.config;
  epochs : int;
  lr : float;
  embed_noise : float;  (** > 0: noise-augmented training (Table 8) *)
}

val all : entry list
(** Every model of the evaluation. *)

val entry : string -> entry
(** Lookup by name. @raise Not_found for unknown names. *)

val sst_corpus : unit -> Text.Corpus.t
val yelp_corpus : unit -> Text.Corpus.t
val sst_small_corpus : unit -> Text.Corpus.t
val corpus_of : corpus_kind -> Text.Corpus.t
(** Deterministic corpora (cached per process). *)

val vision_data : unit -> Vision.Images.image list
(** Deterministic synthetic image set (train + eval pool). *)

val synonyms_for : Nn.Model.t -> Text.Corpus.t -> Text.Synonyms.t
(** The synonym dictionary used by the T2 experiments (deterministic,
    dimensioned by the model). *)

val data_dir : string ref
(** Where models are stored (default "data"). *)

val path : entry -> string

val train_entry : ?log:(string -> unit) -> entry -> Nn.Model.t
(** Trains from scratch (deterministic) and saves. *)

val load_or_train : ?log:(string -> unit) -> string -> Nn.Model.t
(** Loads [data/<name>.model], training and saving it first if absent. *)

val test_accuracy : Nn.Model.t -> entry -> float
(** Accuracy on the entry's held-out set. *)
