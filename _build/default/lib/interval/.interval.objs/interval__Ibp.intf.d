lib/interval/ibp.mli: Imat Ir
