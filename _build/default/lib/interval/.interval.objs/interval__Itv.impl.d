lib/interval/itv.ml: Float Format Printf
