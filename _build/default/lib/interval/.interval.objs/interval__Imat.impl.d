lib/interval/imat.ml: Array Float Itv Mat Tensor
