lib/interval/ibp.ml: Array Imat Ir Itv Mat Option Tensor
