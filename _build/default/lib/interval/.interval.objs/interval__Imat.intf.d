lib/interval/imat.mli: Itv Tensor
