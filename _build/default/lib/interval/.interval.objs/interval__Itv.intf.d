lib/interval/itv.mli: Format
