(** Scalar interval arithmetic.

    The natural interval extension used by the IBP baseline, the complete
    verifier's bounding step, and as a helper inside the zonotope dot
    product (Equation 6 of the paper evaluates products of [-1,1] /
    [0,1] intervals). *)

type t = { lo : float; hi : float }

val make : float -> float -> t
(** [make lo hi]; raises [Invalid_argument] if [lo > hi] (NaN-safe). *)

val point : float -> t
(** Degenerate interval. *)

val zero : t
val top : t
(** [(-inf, +inf)]. *)

val hull : t -> t -> t
(** Smallest interval containing both. *)

val width : t -> float
val center : t -> float
val contains : t -> float -> bool

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Requires the divisor to not contain 0. *)

val scale : float -> t -> t
val add_const : float -> t -> t
val abs : t -> t

val relu : t -> t
val tanh_ : t -> t
val exp_ : t -> t

val recip : t -> t
(** Reciprocal; requires [0 < lo]. *)

val sqrt_ : t -> t
(** Requires [0 <= lo]. *)

val sq : t -> t
(** Square (tight: accounts for intervals straddling 0). *)

val mul_unit : t -> t
(** [mul_unit i] is the range of [x * e] for [x ∈ i], [e ∈ [-1, 1]]. *)

val mul_pos_unit : t -> t
(** Range of [x * e] for [x ∈ i], [e ∈ [0, 1]] — the ε² case in the
    precise dot-product transformer. *)

val pp : Format.formatter -> t -> unit
