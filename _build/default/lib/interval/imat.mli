(** Interval matrices: entrywise lower/upper bound pairs. *)

type t = { lo : Tensor.Mat.t; hi : Tensor.Mat.t }
(** Invariant: same shape, [lo <= hi] entrywise. *)

val make : Tensor.Mat.t -> Tensor.Mat.t -> t
(** Checks shapes and ordering. *)

val of_mat : Tensor.Mat.t -> t
(** Degenerate (point) interval matrix. *)

val of_ball_linf : Tensor.Mat.t -> float -> t
(** [of_ball_linf c r] is the ℓ∞ ball of radius [r] around [c]. *)

val dims : t -> int * int
val get : t -> int -> int -> Itv.t
val set : t -> int -> int -> Itv.t -> unit
val create : int -> int -> t
(** Zero-point interval matrix. *)

val add : t -> t -> t
val sub : t -> t -> t
val map : (Itv.t -> Itv.t) -> t -> t

val matmul_const : t -> Tensor.Mat.t -> t
(** [matmul_const x w] bounds [x * w] for a constant [w] (exact per-entry
    via the sign split of [w]). *)

val matmul : t -> t -> t
(** Interval-interval matrix product (natural extension). *)

val add_row_const : t -> float array -> t
(** Adds a constant row vector to each row. *)

val mul_row_const : t -> float array -> t
(** Scales each column by a constant. *)

val max_width : t -> float
(** Largest interval width; used as a precision metric in tests. *)

val contains : t -> Tensor.Mat.t -> bool
(** Entrywise membership (with a tiny tolerance for rounding). *)
