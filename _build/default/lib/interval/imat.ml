open Tensor

type t = { lo : Mat.t; hi : Mat.t }

let make lo hi =
  if Mat.dims lo <> Mat.dims hi then invalid_arg "Imat.make: shape mismatch";
  let ok = ref true in
  for i = 0 to Array.length lo.Mat.data - 1 do
    if not (lo.Mat.data.(i) <= hi.Mat.data.(i)) then ok := false
  done;
  if not !ok then invalid_arg "Imat.make: lo > hi somewhere";
  { lo; hi }

let of_mat m = { lo = Mat.copy m; hi = Mat.copy m }

let of_ball_linf c r =
  if r < 0.0 then invalid_arg "Imat.of_ball_linf: negative radius";
  { lo = Mat.add_scalar (-.r) c; hi = Mat.add_scalar r c }

let dims x = Mat.dims x.lo
let get x i j =
  let l = Mat.get x.lo i j and h = Mat.get x.hi i j in
  Itv.{ lo = l; hi = h }

let set x i j (v : Itv.t) =
  Mat.set x.lo i j v.Itv.lo;
  Mat.set x.hi i j v.Itv.hi

let create r c = { lo = Mat.create r c; hi = Mat.create r c }

let add a b = { lo = Mat.add a.lo b.lo; hi = Mat.add a.hi b.hi }
let sub a b = { lo = Mat.sub a.lo b.hi; hi = Mat.sub a.hi b.lo }

let map f x =
  let r, c = dims x in
  let out = create r c in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      set out i j (f (get x i j))
    done
  done;
  out

let matmul_const x w =
  let wpos = Mat.map (fun v -> Float.max v 0.0) w in
  let wneg = Mat.map (fun v -> Float.min v 0.0) w in
  {
    lo = Mat.add (Mat.matmul x.lo wpos) (Mat.matmul x.hi wneg);
    hi = Mat.add (Mat.matmul x.hi wpos) (Mat.matmul x.lo wneg);
  }

let matmul a b =
  let m, k = dims a in
  let k2, n = dims b in
  if k <> k2 then invalid_arg "Imat.matmul: inner dimension mismatch";
  let out = create m n in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref Itv.zero in
      for p = 0 to k - 1 do
        acc := Itv.add !acc (Itv.mul (get a i p) (get b p j))
      done;
      set out i j !acc
    done
  done;
  out

let add_row_const x v =
  {
    lo = Mat.add_row_broadcast x.lo v;
    hi = Mat.add_row_broadcast x.hi v;
  }

let mul_row_const x v =
  let r, c = dims x in
  if Array.length v <> c then invalid_arg "Imat.mul_row_const";
  let out = create r c in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      set out i j (Itv.scale v.(j) (get x i j))
    done
  done;
  out

let max_width x = Mat.max_abs (Mat.sub x.hi x.lo)

let contains x m =
  let tol = 1e-9 in
  Mat.dims m = dims x
  &&
  let ok = ref true in
  let r, c = dims x in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      let v = Mat.get m i j in
      if v < Mat.get x.lo i j -. tol || v > Mat.get x.hi i j +. tol then ok := false
    done
  done;
  !ok
