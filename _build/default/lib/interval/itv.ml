type t = { lo : float; hi : float }

let make lo hi =
  if not (lo <= hi) then
    invalid_arg (Printf.sprintf "Itv.make: lo %g > hi %g" lo hi);
  { lo; hi }

let point x = { lo = x; hi = x }
let zero = point 0.0
let top = { lo = neg_infinity; hi = infinity }
let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
let width i = i.hi -. i.lo
let center i = 0.5 *. (i.lo +. i.hi)
let contains i x = i.lo <= x && x <= i.hi

let add a b = { lo = a.lo +. b.lo; hi = a.hi +. b.hi }
let sub a b = { lo = a.lo -. b.hi; hi = a.hi -. b.lo }
let neg a = { lo = -.a.hi; hi = -.a.lo }

let mul a b =
  let p1 = a.lo *. b.lo and p2 = a.lo *. b.hi in
  let p3 = a.hi *. b.lo and p4 = a.hi *. b.hi in
  { lo = Float.min (Float.min p1 p2) (Float.min p3 p4);
    hi = Float.max (Float.max p1 p2) (Float.max p3 p4) }

let recip a =
  if a.lo <= 0.0 then invalid_arg "Itv.recip: interval must be strictly positive";
  { lo = 1.0 /. a.hi; hi = 1.0 /. a.lo }

let div a b =
  if b.lo <= 0.0 && b.hi >= 0.0 then invalid_arg "Itv.div: divisor contains zero";
  if b.lo > 0.0 then mul a (recip b)
  else mul a (neg (recip (neg b)))

let scale s a = if s >= 0.0 then { lo = s *. a.lo; hi = s *. a.hi } else { lo = s *. a.hi; hi = s *. a.lo }
let add_const c a = { lo = a.lo +. c; hi = a.hi +. c }

let abs a =
  if a.lo >= 0.0 then a
  else if a.hi <= 0.0 then neg a
  else { lo = 0.0; hi = Float.max (-.a.lo) a.hi }

let relu a = { lo = Float.max 0.0 a.lo; hi = Float.max 0.0 a.hi }
let tanh_ a = { lo = tanh a.lo; hi = tanh a.hi }
let exp_ a = { lo = exp a.lo; hi = exp a.hi }

let sqrt_ a =
  if a.lo < 0.0 then invalid_arg "Itv.sqrt_: negative lower bound";
  { lo = sqrt a.lo; hi = sqrt a.hi }

let sq a =
  let l = a.lo *. a.lo and h = a.hi *. a.hi in
  if contains a 0.0 then { lo = 0.0; hi = Float.max l h }
  else { lo = Float.min l h; hi = Float.max l h }

let mul_unit a =
  let m = Float.max (Float.abs a.lo) (Float.abs a.hi) in
  { lo = -.m; hi = m }

let mul_pos_unit a = { lo = Float.min 0.0 a.lo; hi = Float.max 0.0 a.hi }

let pp ppf i = Format.fprintf ppf "[%g, %g]" i.lo i.hi
