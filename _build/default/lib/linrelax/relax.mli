(** Linear relaxations for the CROWN baseline.

    Unary functions are relaxed by the same minimal-area parallel-line
    machinery as the zonotope transformers (sound by construction; see
    {!Deept.Elementwise}), giving a lower and an upper bounding line per
    variable. Products are relaxed by McCormick planes, picking for each
    bound the candidate plane that is tighter at the box midpoint —
    the standard choice in linear-relaxation verifiers for Transformers. *)

type line = { slope : float; icept : float }
(** The line [x ↦ slope·x + icept]. *)

val unary_lines : Lgraph.unary_kind -> l:float -> u:float -> line * line
(** [(lower, upper)] bounding lines of the function on [[l, u]].
    For [Recip] the input is floored at a tiny positive constant (1e-30, below any reachable true value) (its
    uses in the softmax and layer-norm decompositions are provably
    positive); for [Sqrt] a negative [l] is clamped to 0. *)

type plane = { cx : float; cy : float; c : float }
(** The plane [(x, y) ↦ cx·x + cy·y + c]. *)

val product_planes :
  lx:float -> ux:float -> ly:float -> uy:float -> plane * plane
(** [(lower, upper)] McCormick planes bounding [x·y] on the box. *)

val recip_floor : float
(** The positivity floor applied to reciprocal inputs. *)
