lib/linrelax/engine.mli: Deept Lgraph
