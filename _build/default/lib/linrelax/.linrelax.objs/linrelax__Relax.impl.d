lib/linrelax/relax.ml: Deept Lgraph
