lib/linrelax/verify.mli: Deept Engine Ir Lgraph Tensor
