lib/linrelax/lgraph.ml: Array Float Format Ir List Mat Tensor
