lib/linrelax/verify.ml: Array Deept Engine Float Lgraph List Mat Tensor
