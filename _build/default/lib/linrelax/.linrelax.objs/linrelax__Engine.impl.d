lib/linrelax/engine.ml: Array Deept Float Lgraph List Mat Option Relax Tensor
