lib/linrelax/lgraph.mli: Format Ir Tensor
