lib/linrelax/relax.mli: Lgraph
