type line = { slope : float; icept : float }

let lines_of_coeffs (c : Deept.Elementwise.coeffs) =
  ( { slope = c.Deept.Elementwise.lambda; icept = c.Deept.Elementwise.mu -. c.Deept.Elementwise.beta },
    { slope = c.Deept.Elementwise.lambda; icept = c.Deept.Elementwise.mu +. c.Deept.Elementwise.beta } )

let recip_floor = 1e-30

let unary_lines (kind : Lgraph.unary_kind) ~l ~u =
  let module E = Deept.Elementwise in
  match kind with
  | Lgraph.Relu -> lines_of_coeffs (E.relu_coeffs ~l ~u)
  | Lgraph.Tanh -> lines_of_coeffs (E.tanh_coeffs ~l ~u)
  | Lgraph.Exp -> lines_of_coeffs (E.exp_coeffs ~l ~u)
  | Lgraph.Recip -> lines_of_coeffs (E.recip_coeffs ~floor:recip_floor ~l ~u ())
  | Lgraph.Sqrt -> lines_of_coeffs (E.sqrt_coeffs ~l ~u)

type plane = { cx : float; cy : float; c : float }

let eval_plane p x y = (p.cx *. x) +. (p.cy *. y) +. p.c

let product_planes ~lx ~ux ~ly ~uy =
  let mx = 0.5 *. (lx +. ux) and my = 0.5 *. (ly +. uy) in
  (* McCormick envelopes: both lower planes under-approximate x*y on the
     box, both upper planes over-approximate; pick the tighter at the
     midpoint. *)
  let lo1 = { cx = ly; cy = lx; c = -.(lx *. ly) } in
  let lo2 = { cx = uy; cy = ux; c = -.(ux *. uy) } in
  let hi1 = { cx = ly; cy = ux; c = -.(ux *. ly) } in
  let hi2 = { cx = uy; cy = lx; c = -.(lx *. uy) } in
  let lower = if eval_plane lo1 mx my >= eval_plane lo2 mx my then lo1 else lo2 in
  let upper = if eval_plane hi1 mx my <= eval_plane hi2 mx my then hi1 else hi2 in
  (lower, upper)
