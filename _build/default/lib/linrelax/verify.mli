(** The CROWN baseline verifiers (Shi et al.), as compared against in the
    paper's evaluation: [Backward] (precise, slow, superlinear in depth)
    and [Baf] (backward-and-forward: early-stopped backsubstitution —
    fast, loses precision with depth). The API mirrors {!Deept.Certify}
    so benchmarks can drive both verifiers uniformly. *)

type verifier = Backward | Baf
(** [Baf] stops backsubstitution after roughly one Transformer layer's
    worth of relaxations (configurable via [baf_steps]). *)

val graph_of : Ir.program -> seq_len:int -> Lgraph.t
(** Expansion cache helper (building the scalar graph is the expensive
    setup step; reuse it across the radius search). *)

val region_word_ball :
  p:Deept.Lp.t -> Tensor.Mat.t -> word:int -> radius:float -> Engine.region
(** Threat model T1 (one word perturbed), as an engine region. *)

val region_all_ball : p:Deept.Lp.t -> Tensor.Mat.t -> radius:float -> Engine.region

val region_box : Tensor.Mat.t -> Tensor.Mat.t -> Engine.region
(** Axis-aligned box [lo, hi]. *)

val region_synonym_box :
  Tensor.Mat.t -> (int * float array list) list -> Engine.region
(** Threat model T2, mirroring {!Deept.Region.synonym_box}. *)

val margin :
  verifier:verifier -> ?baf_steps:int -> Lgraph.t -> Engine.region ->
  true_class:int -> float
(** Lower bound of [min_{j≠t} (y_t − y_j)] (the functional is
    backsubstituted as a whole, so common terms cancel). *)

val certify :
  verifier:verifier -> ?baf_steps:int -> Lgraph.t -> Engine.region ->
  true_class:int -> bool

val certified_radius :
  verifier:verifier -> ?baf_steps:int -> ?hi:float -> ?iters:int ->
  Ir.program -> p:Deept.Lp.t -> Tensor.Mat.t -> word:int -> true_class:int ->
  unit -> float
(** Binary search for the largest certified ℓp radius around one word,
    mirroring {!Deept.Certify.certified_radius}. *)

val default_baf_steps : int
