open Tensor

type verifier = Backward | Baf

(* About two Transformer layers' worth of relaxation nodes (one layer with
   4 heads is ~42 nodes: QKV, per-head score/exp/sum/recip/P/Z chains,
   concatenation, residuals, normalization, feed-forward). Tuned so BaF is
   close to full backsubstitution on shallow stacks while degrading with
   depth — the trade-off the paper reports for CROWN-BaF. *)
let default_baf_steps = 96

let graph_of p ~seq_len = Lgraph.of_ir p ~seq_len

let flat (m : Mat.t) = Array.copy m.Mat.data

let region_word_ball ~p x ~word ~radius : Engine.region =
  let n = Mat.rows x and d = Mat.cols x in
  if word < 0 || word >= n then invalid_arg "Verify.region_word_ball";
  let scale = Array.make (n * d) 0.0 in
  for j = 0 to d - 1 do
    scale.((word * d) + j) <- radius
  done;
  { center = flat x; p; scale }

let region_all_ball ~p x ~radius : Engine.region =
  { center = flat x; p; scale = Array.make (Mat.rows x * Mat.cols x) radius }

let region_box lo hi : Engine.region =
  if Mat.dims lo <> Mat.dims hi then invalid_arg "Verify.region_box";
  let n = Mat.rows lo * Mat.cols lo in
  let center = Array.init n (fun v -> 0.5 *. (lo.Mat.data.(v) +. hi.Mat.data.(v))) in
  let scale = Array.init n (fun v -> 0.5 *. (hi.Mat.data.(v) -. lo.Mat.data.(v))) in
  Array.iter (fun s -> if s < 0.0 then invalid_arg "Verify.region_box: lo > hi") scale;
  { center; p = Deept.Lp.Linf; scale }

let region_synonym_box x subs =
  let d = Mat.cols x in
  let lo = Mat.copy x and hi = Mat.copy x in
  List.iter
    (fun (pos, alts) ->
      List.iter
        (fun (alt : float array) ->
          if Array.length alt <> d then invalid_arg "Verify.region_synonym_box";
          for j = 0 to d - 1 do
            Mat.set lo pos j (Float.min (Mat.get lo pos j) alt.(j));
            Mat.set hi pos j (Float.max (Mat.get hi pos j) alt.(j))
          done)
        alts)
    subs;
  region_box lo hi

let mode_of verifier baf_steps : Engine.mode =
  match verifier with Backward -> Engine.Backward | Baf -> Engine.Baf baf_steps

let rec margin ~verifier ?(baf_steps = default_baf_steps) g region ~true_class =
  try margin_exn ~verifier ~baf_steps g region ~true_class
  with Deept.Zonotope.Unbounded -> neg_infinity

and margin_exn ~verifier ~baf_steps g region ~true_class =
  let st = Engine.analyze ~mode:(mode_of verifier baf_steps) g region in
  let n_out = g.Lgraph.sizes.(g.Lgraph.output) in
  if true_class < 0 || true_class >= n_out then invalid_arg "Verify.margin: class";
  let best = ref infinity in
  for j = 0 to n_out - 1 do
    if j <> true_class then begin
      let coeffs = Array.make n_out 0.0 in
      coeffs.(true_class) <- 1.0;
      coeffs.(j) <- -1.0;
      let lb = Engine.linear_lower_bound st ~node:g.Lgraph.output ~coeffs in
      if lb < !best then best := lb
    end
  done;
  !best

let certify ~verifier ?baf_steps g region ~true_class =
  margin ~verifier ?baf_steps g region ~true_class > 0.0

let certified_radius ~verifier ?baf_steps ?hi ?(iters = 10) program ~p x ~word
    ~true_class () =
  let g = graph_of program ~seq_len:(Mat.rows x) in
  Deept.Certify.max_radius ?hi ~iters (fun radius ->
      radius > 0.0
      && certify ~verifier ?baf_steps g
           (region_word_ball ~p x ~word ~radius)
           ~true_class)
