open Tensor

type t = {
  radius : float;
  table : (int, float array list) Hashtbl.t;  (** token -> offsets *)
}

let generate ?(max_synonyms = 6) ?(radius = 0.015) ?(coverage = 0.8) rng
    (c : Corpus.t) ~dim =
  if radius < 0.0 then invalid_arg "Synonyms.generate: negative radius";
  let table = Hashtbl.create 64 in
  let n_sentiment = c.Corpus.n_positive + c.Corpus.n_negative in
  for id = 2 to 1 + n_sentiment do
    if Rng.float rng < coverage then begin
      let k = 1 + Rng.int rng max_synonyms in
      let offs =
        List.init k (fun _ ->
            Array.init dim (fun _ -> Rng.uniform rng (-.radius) radius))
      in
      Hashtbl.replace table id offs
    end
  done;
  { radius; table }

let radius t = t.radius

let offsets t id = Option.value (Hashtbl.find_opt t.table id) ~default:[]

let names t c id =
  List.mapi (fun i _ -> Printf.sprintf "%s~%d" (Corpus.word c id) (i + 1)) (offsets t id)

let substitutions t model tokens =
  (* Row [pos] of the embedded sequence already includes the positional
     encoding, so a synonym's row is simply that row plus its offset. *)
  let embedded = Nn.Model.embed_tokens model tokens in
  let d = Mat.cols embedded in
  let out = ref [] in
  Array.iteri
    (fun pos tok ->
      match offsets t tok with
      | [] -> ()
      | offs ->
          let rows =
            List.map
              (fun (off : float array) ->
                Array.init d (fun j -> Mat.get embedded pos j +. off.(j)))
              offs
          in
          out := (pos, rows) :: !out)
    tokens;
  List.rev !out

let count_combinations t tokens =
  Array.fold_left (fun acc tok -> acc * (1 + List.length (offsets t tok))) 1 tokens
