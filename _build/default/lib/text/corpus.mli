(** Synthetic sentiment corpora — the SST / Yelp stand-ins.

    The real datasets are unavailable in this environment; certification
    experiments only need networks trained on a {e real} binary
    classification task whose decision depends on the input tokens, so we
    synthesize one: a vocabulary partitioned into positive, negative and
    neutral words; sentences mix sentiment-bearing words (determining the
    label) with neutral distractors. The two styles mirror the datasets'
    characters: [Sst_like] sentences are short and noisy (an
    opposite-polarity word may appear); [Yelp_like] sentences are longer
    with a cleaner signal, mirroring the higher accuracies the paper
    reports on Yelp.

    Token 0 is the [[CLS]] marker heading every sentence — the embedding
    the Transformer pools for classification. *)

type style = Sst_like | Yelp_like

type t = {
  style : style;
  vocab : string array;
  n_positive : int;  (** ids [2 .. 2 + n_positive) are positive words *)
  n_negative : int;
  train : (int array * int) list;  (** (tokens, label); label 1 = positive *)
  test : (int array * int) list;
  max_len : int;
}

val cls : int
(** The [[CLS]] token id (0). *)

val generate :
  ?vocab_size:int ->
  ?train_size:int ->
  ?test_size:int ->
  ?max_len:int ->
  Tensor.Rng.t -> style -> t
(** Deterministic corpus from the generator state. Defaults: vocabulary
    64, 1600 training and 200 test sentences, [max_len] 12 (SST-like) /
    14 (Yelp-like). *)

val word : t -> int -> string
(** Vocabulary lookup. *)

val is_sentiment_word : t -> int -> bool
(** Whether a token carries polarity (candidate for synonym attack). *)

val sentence : t -> int array -> string
(** Human-readable rendering of a token sequence. *)

val tokenize : t -> string -> int array
(** Whitespace tokenizer: maps each word to its vocabulary id (the
    [[UNK]] id for unknown words) and prepends [[CLS]]. The result is
    truncated to [max_len]. *)

val examples : (int array * int) list -> Nn.Train.example list
(** Adapter for the trainer. *)

val pp_stats : Format.formatter -> t -> unit
