open Tensor

type style = Sst_like | Yelp_like

type t = {
  style : style;
  vocab : string array;
  n_positive : int;
  n_negative : int;
  train : (int array * int) list;
  test : (int array * int) list;
  max_len : int;
}

let cls = 0

(* Small word stems so rendered sentences look plausible in examples. *)
let positive_stems =
  [| "great"; "lovely"; "superb"; "delightful"; "brilliant"; "charming";
     "moving"; "fresh" |]

let negative_stems =
  [| "awful"; "dull"; "tedious"; "clumsy"; "bland"; "grim"; "hollow"; "stale" |]

let neutral_stems =
  [| "movie"; "plot"; "actor"; "scene"; "script"; "camera"; "story"; "film";
     "the"; "a"; "with"; "very"; "quite"; "its"; "and"; "was" |]

let build_vocab vocab_size =
  if vocab_size < 16 then invalid_arg "Corpus.generate: vocabulary too small";
  let n_sentiment = vocab_size / 4 in
  let n_positive = n_sentiment and n_negative = n_sentiment in
  let vocab = Array.make vocab_size "" in
  vocab.(0) <- "[CLS]";
  vocab.(1) <- "[UNK]";
  for i = 0 to n_positive - 1 do
    vocab.(2 + i) <-
      Printf.sprintf "%s%d" positive_stems.(i mod Array.length positive_stems)
        (i / Array.length positive_stems)
  done;
  for i = 0 to n_negative - 1 do
    vocab.(2 + n_positive + i) <-
      Printf.sprintf "%s%d" negative_stems.(i mod Array.length negative_stems)
        (i / Array.length negative_stems)
  done;
  for i = 2 + n_positive + n_negative to vocab_size - 1 do
    let k = i - 2 - n_positive - n_negative in
    vocab.(i) <-
      Printf.sprintf "%s%d" neutral_stems.(k mod Array.length neutral_stems)
        (k / Array.length neutral_stems)
  done;
  (vocab, n_positive, n_negative)

let gen_sentence rng ~style ~vocab_size ~n_positive ~n_negative ~max_len =
  let label = if Rng.bool rng then 1 else 0 in
  let min_len, noise_prob =
    match style with Sst_like -> (4, 0.2) | Yelp_like -> (7, 0.05)
  in
  let n = min_len + Rng.int rng (max_len - min_len) in
  let neutral_base = 2 + n_positive + n_negative in
  let n_neutral_words = vocab_size - neutral_base in
  let toks = Array.make n 0 in
  toks.(0) <- cls;
  for i = 1 to n - 1 do
    toks.(i) <- neutral_base + Rng.int rng n_neutral_words
  done;
  (* Sentiment words matching the label; occasionally one conflicting word
     (SST reviews hedge a lot, Yelp reviews rarely). *)
  let k = 1 + Rng.int rng 2 in
  let body_positions = Rng.sample_without_replacement rng (min k (n - 1)) (n - 1) in
  Array.iter
    (fun p ->
      let id =
        if label = 1 then 2 + Rng.int rng n_positive
        else 2 + n_positive + Rng.int rng n_negative
      in
      toks.(1 + p) <- id)
    body_positions;
  if n > 3 && Rng.float rng < noise_prob then begin
    let p = 1 + Rng.int rng (n - 1) in
    if not (Array.exists (fun q -> 1 + q = p) body_positions) then
      toks.(p) <-
        (if label = 1 then 2 + n_positive + Rng.int rng n_negative
         else 2 + Rng.int rng n_positive)
  end;
  (toks, label)

let generate ?(vocab_size = 64) ?(train_size = 1600) ?(test_size = 200) ?max_len
    rng style =
  let max_len =
    match max_len with
    | Some m -> m
    | None -> ( match style with Sst_like -> 12 | Yelp_like -> 14)
  in
  let vocab, n_positive, n_negative = build_vocab vocab_size in
  let gen () =
    gen_sentence rng ~style ~vocab_size ~n_positive ~n_negative ~max_len
  in
  let train = List.init train_size (fun _ -> gen ()) in
  let test = List.init test_size (fun _ -> gen ()) in
  { style; vocab; n_positive; n_negative; train; test; max_len }

let word c id =
  if id < 0 || id >= Array.length c.vocab then invalid_arg "Corpus.word";
  c.vocab.(id)

let is_sentiment_word c id = id >= 2 && id < 2 + c.n_positive + c.n_negative

let sentence c toks =
  String.concat " " (Array.to_list (Array.map (word c) toks))

let tokenize c text =
  let words =
    String.split_on_char ' ' text
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun w -> w <> "" && w <> "[CLS]")
  in
  let lookup w =
    let rec find i = if i >= Array.length c.vocab then 1 (* [UNK] *)
      else if c.vocab.(i) = w then i else find (i + 1)
    in
    find 0
  in
  let toks = cls :: List.map lookup words in
  let toks = List.filteri (fun i _ -> i < c.max_len) toks in
  Array.of_list toks

let examples pairs =
  List.map (fun (toks, label) -> Nn.Train.token_example toks label) pairs

let pp_stats ppf c =
  let avg l =
    List.fold_left (fun acc (t, _) -> acc +. float_of_int (Array.length t)) 0.0 l
    /. float_of_int (List.length l)
  in
  Format.fprintf ppf
    "%s corpus: vocab %d (%d pos, %d neg), %d train / %d test, avg len %.1f"
    (match c.style with Sst_like -> "SST-like" | Yelp_like -> "Yelp-like")
    (Array.length c.vocab) c.n_positive c.n_negative (List.length c.train)
    (List.length c.test) (avg c.train)
