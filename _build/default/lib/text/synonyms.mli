(** Synthetic synonym dictionary (threat model T2, Section 6.7).

    The paper's synonym sets (Alzantot et al.) are nearest neighbours in
    a counter-fitted embedding space — the property certification relies
    on is purely geometric: a word's synonyms embed {e close to it}. We
    generate exactly that geometry: each sentiment-bearing word gets up
    to [max_synonyms] synonyms whose embeddings are the base word's
    embedding plus a fixed small ℓ∞-bounded offset (drawn once per seed,
    so the dictionary is deterministic and shared between certification
    and enumeration). *)

type t

val generate :
  ?max_synonyms:int ->
  ?radius:float ->
  ?coverage:float ->
  Tensor.Rng.t -> Corpus.t -> dim:int -> t
(** [generate rng corpus ~dim] draws offsets in dimension [dim] for the
    corpus's sentiment words. Defaults: up to 6 synonyms per word,
    ℓ∞ offset radius 0.015 (within the robust region the noise-augmented
    training of the Table 8 network produces — the analogue of using a
    counter-fitted space where synonyms embed very close to their base
    word), coverage 0.8 (fraction of sentiment words that have any
    synonyms — Table 9 shows not all words do). *)

val radius : t -> float

val offsets : t -> int -> float array list
(** Offsets of a token's synonyms (empty if it has none). *)

val names : t -> Corpus.t -> int -> string list
(** Display names for a token's synonyms ("great0~1", ...). *)

val substitutions :
  t -> Nn.Model.t -> int array -> (int * float array list) list
(** [(position, alternative embedding rows)] for every position of the
    token sequence that has synonyms — the exact input of
    {!Deept.Region.synonym_box} and {!Deept.Certify.enumerate_synonyms}.
    Alternatives include the positional encoding of the position they
    substitute at. *)

val count_combinations : t -> int array -> int
(** Number of sentences enumeration must classify for this sequence. *)
