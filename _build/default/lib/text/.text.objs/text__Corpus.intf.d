lib/text/corpus.mli: Format Nn Tensor
