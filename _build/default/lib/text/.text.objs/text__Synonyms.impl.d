lib/text/synonyms.ml: Array Corpus Hashtbl List Mat Nn Option Printf Rng Tensor
