lib/text/synonyms.mli: Corpus Nn Tensor
