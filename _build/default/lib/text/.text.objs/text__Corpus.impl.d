lib/text/corpus.ml: Array Format List Nn Printf Rng String Tensor
