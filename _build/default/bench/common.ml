(* Shared machinery for the table benchmarks: verifier wrappers with a
   uniform radius-search interface, example selection, statistics and
   paper-style table rendering. *)

open Tensor

type scale = {
  examples : int;  (** sentences / images per table cell *)
  positions : int;  (** perturbed word positions per sentence *)
  iters : int;  (** binary-search refinement steps *)
}

let quick_scale = { examples = 2; positions = 1; iters = 6 }
let full_scale = { examples = 6; positions = 4; iters = 8 }

(* ------------------------------------------------------------------ *)

type verifier = {
  vname : string;
  radius :
    Ir.program -> p:Deept.Lp.t -> Mat.t -> word:int -> true_class:int ->
    iters:int -> float;
}

(* Starting bracket of the radius binary search, by norm: linf radii are
   an order of magnitude below l2/l1 ones, and a well-chosen bracket both
   saves probes and improves grid resolution. *)
let search_hi (p : Deept.Lp.t) =
  match p with Deept.Lp.Linf -> 0.06 | Deept.Lp.L2 -> 0.4 | Deept.Lp.L1 -> 0.8

let deept_verifier name cfg =
  {
    vname = name;
    radius =
      (fun program ~p x ~word ~true_class ~iters ->
        Deept.Certify.certified_radius cfg program ~p x ~word ~true_class
          ~hi:(search_hi p) ~iters ());
  }

let deept_fast = deept_verifier "DeepT-Fast" Deept.Config.fast
let deept_precise = deept_verifier "DeepT-Precise" Deept.Config.precise
let deept_combined = deept_verifier "DeepT-Combined" Deept.Config.combined

let crown_verifier name v =
  {
    vname = name;
    radius =
      (fun program ~p x ~word ~true_class ~iters ->
        Linrelax.Verify.certified_radius ~verifier:v ~hi:(search_hi p) ~iters
          program ~p x ~word ~true_class ());
  }

let crown_baf = crown_verifier "CROWN-BaF" Linrelax.Verify.Baf
let crown_backward = crown_verifier "CROWN-Backward" Linrelax.Verify.Backward

(* ------------------------------------------------------------------ *)

type example = { toks : int array; x : Mat.t; label : int }

(* Correctly classified test sentences, preferring shorter ones (CROWN's
   cost grows steeply with sequence length; the paper likewise bounds
   sentence lengths, Section 6.2). *)
let pick_examples ?(max_len = 8) model corpus ~n =
  let program = Nn.Model.to_ir model in
  let candidates =
    List.filter_map
      (fun (toks, label) ->
        if Array.length toks > max_len then None
        else
          let x = Nn.Model.embed_tokens model toks in
          if Nn.Forward.predict program x = label then Some { toks; x; label }
          else None)
      corpus.Text.Corpus.test
  in
  List.filteri (fun i _ -> i < n) candidates

(* Evenly spaced word positions, skipping the [CLS] slot. *)
let positions ~k n =
  let avail = n - 1 in
  let k = min k avail in
  List.init k (fun i -> 1 + (i * avail / k))

type row_stats = { min_r : float; avg_r : float; time : float; queries : int }

let radius_stats verifier program ~p ~iters examples ~positions:k =
  let t0 = Unix.gettimeofday () in
  let radii =
    List.concat_map
      (fun ex ->
        List.map
          (fun word ->
            verifier.radius program ~p ex.x ~word ~true_class:ex.label ~iters)
          (positions ~k (Array.length ex.toks)))
      examples
  in
  let time = Unix.gettimeofday () -. t0 in
  let n = List.length radii in
  if n = 0 then { min_r = nan; avg_r = nan; time; queries = 0 }
  else
    {
      min_r = List.fold_left Float.min infinity radii;
      avg_r = List.fold_left ( +. ) 0.0 radii /. float_of_int n;
      time;
      queries = n;
    }

(* ------------------------------------------------------------------ *)

let hr = String.make 78 '-'

let table_header title note =
  Printf.printf "\n%s\n%s\n%s\n" hr title hr;
  if note <> "" then Printf.printf "%s\n" note

let fmt_r r = if Float.is_nan r then "-" else Printf.sprintf "%.5f" r

let fmt_ratio a b =
  if Float.is_nan a || Float.is_nan b then "-"
  else if b = 0.0 then if a > 0.0 then "inf" else "-"
  else Printf.sprintf "%.2f" (a /. b)

let norms = [ (Deept.Lp.L1, "l1"); (Deept.Lp.L2, "l2"); (Deept.Lp.Linf, "linf") ]
