bench/main.ml: Array Common List Micro Printf String Sys Tables Unix
