bench/tables.ml: Array Common Complete Deept Float Interval Linrelax List Mat Nn Printf Rng String Tensor Text Unix Vision Zoo
