bench/micro.ml: Analyze Array Bechamel Benchmark Common Complete Deept Hashtbl Helpers_model Instance Lazy Linrelax List Mat Measure Nn Printf Rng Staged Tensor Test Time Toolkit
