bench/helpers_model.ml: Nn Tensor
