bench/main.mli:
