bench/common.ml: Array Deept Float Ir Linrelax List Mat Nn Printf String Tensor Text Unix
