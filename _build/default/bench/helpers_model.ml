(* Tiny fixed model used by the micro-benchmarks (kept out of the zoo so
   the kernels' cost is stable and independent of training). *)

let tiny () =
  let rng = Tensor.Rng.create 5 in
  Nn.Model.create rng
    {
      Nn.Model.default_config with
      Nn.Model.vocab_size = 16;
      max_len = 6;
      d_model = 8;
      d_hidden = 8;
      heads = 2;
      layers = 1;
    }
