(* Threat model T2 (Figure 1 of the paper): every word of a sentence may be
   replaced by any of its synonyms, simultaneously. Certification covers all
   combinations at once with a single abstract run; the enumeration baseline
   must classify every combination.

     dune exec examples/synonym_attack.exe *)

let () =
  let model = Zoo.load_or_train ~log:print_endline "robust_3" in
  let corpus = Zoo.sst_corpus () in
  let program = Nn.Model.to_ir model in
  let syn = Zoo.synonyms_for model corpus in

  (* Pick correctly-classified test sentences with a non-trivial number of
     synonym combinations. *)
  let interesting =
    List.filter
      (fun (toks, label) ->
        Nn.Forward.predict program (Nn.Model.embed_tokens model toks) = label
        && Text.Synonyms.count_combinations syn toks >= 4)
      corpus.Text.Corpus.test
  in
  Printf.printf "%d interesting sentences; showing the first 5\n\n"
    (List.length interesting);

  let show (toks, label) =
    let x = Nn.Model.embed_tokens model toks in
    let subs = Text.Synonyms.substitutions syn model toks in
    Printf.printf "sentence: %s  [%s]\n"
      (Text.Corpus.sentence corpus toks)
      (if label = 1 then "positive" else "negative");
    Array.iter
      (fun tok ->
        match Text.Synonyms.names syn corpus tok with
        | [] -> ()
        | names ->
            Printf.printf "    %-14s ~ %s\n" (Text.Corpus.word corpus tok)
              (String.concat ", " names))
      toks;
    let combos = Deept.Certify.count_combinations subs in
    let t0 = Sys.time () in
    let certified =
      Deept.Certify.certify_synonyms Deept.Config.fast program x subs
        ~true_class:label
    in
    let t_cert = Sys.time () -. t0 in
    let t0 = Sys.time () in
    let enum_ok, checked =
      Deept.Certify.enumerate_synonyms ~limit:20_000 program x subs
        ~true_class:label
    in
    let t_enum = Sys.time () -. t0 in
    Printf.printf
      "  %d combinations | DeepT: %-13s (%.3fs) | enumeration: %s after %d \
       classifications (%.3fs)\n\n"
      combos
      (if certified then "CERTIFIED" else "not certified")
      t_cert
      (if enum_ok then "all correct" else "attack found")
      checked t_enum;
    (* Certification is sound: it never certifies an attackable sentence. *)
    assert ((not certified) || enum_ok)
  in
  List.iteri (fun i s -> if i < 5 then show s) interesting
