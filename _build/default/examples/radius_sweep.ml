(* Per-word certified-radius profile of a sentence — the measurement behind
   the paper's Tables 1-3: for every position, the largest lp ball around
   that word's embedding whose classifications are all provably unchanged.
   Also contrasts DeepT-Fast with the CROWN-BaF baseline on the same words.

     dune exec examples/radius_sweep.exe *)

open Tensor

let () =
  let model = Zoo.load_or_train ~log:print_endline "sst_3" in
  let corpus = Zoo.sst_corpus () in
  let program = Nn.Model.to_ir model in
  let toks, label =
    List.find
      (fun (toks, label) ->
        Array.length toks >= 6
        && Array.length toks <= 8
        && Nn.Forward.predict program (Nn.Model.embed_tokens model toks) = label)
      corpus.Text.Corpus.test
  in
  let x = Nn.Model.embed_tokens model toks in
  Printf.printf "sentence: %s\nlabel: %s\n\n"
    (Text.Corpus.sentence corpus toks)
    (if label = 1 then "positive" else "negative");
  Printf.printf "%-4s %-14s %12s %12s %14s\n" "pos" "word" "DeepT l2"
    "DeepT linf" "CROWN-BaF l2";
  let g = Linrelax.Verify.graph_of program ~seq_len:(Mat.rows x) in
  Array.iteri
    (fun word tok ->
      let deept p =
        Deept.Certify.certified_radius Deept.Config.fast program ~p x ~word
          ~true_class:label ~hi:0.4 ~iters:6 ()
      in
      let baf =
        Deept.Certify.max_radius ~hi:0.4 ~iters:6 (fun radius ->
            radius > 0.0
            && Linrelax.Verify.certify ~verifier:Linrelax.Verify.Baf g
                 (Linrelax.Verify.region_word_ball ~p:Deept.Lp.L2 x ~word ~radius)
                 ~true_class:label)
      in
      Printf.printf "%-4d %-14s %12.5f %12.5f %14.5f\n" word
        (Text.Corpus.word corpus tok)
        (deept Deept.Lp.L2) (deept Deept.Lp.Linf) baf)
    toks
