(* Quickstart: train a small sentiment Transformer from scratch, compile it
   to the verification IR, and certify an l2 perturbation of one word with
   the Multi-norm Zonotope verifier.

     dune exec examples/quickstart.exe *)

open Tensor

let () =
  (* 1. A synthetic sentiment corpus (the SST stand-in). *)
  let rng = Rng.create 42 in
  let corpus = Text.Corpus.generate ~train_size:800 rng Text.Corpus.Sst_like in
  Format.printf "%a@." Text.Corpus.pp_stats corpus;

  (* 2. A small Transformer encoder, trained with the built-in autodiff. *)
  let cfg =
    { Nn.Model.default_config with
      Nn.Model.vocab_size = Array.length corpus.Text.Corpus.vocab;
      max_len = corpus.Text.Corpus.max_len;
      d_model = 16; d_hidden = 16; heads = 4; layers = 2 }
  in
  let model = Nn.Model.create rng cfg in
  Nn.Train.train_model ~epochs:5 ~rng model
    (Text.Corpus.examples corpus.Text.Corpus.train);
  Printf.printf "test accuracy: %.3f\n\n"
    (Nn.Train.accuracy model (Text.Corpus.examples corpus.Text.Corpus.test));

  (* 3. Compile to the IR every verifier interprets. *)
  let program = Nn.Model.to_ir model in

  (* 4. Certify: is the classification stable under an l2 ball of radius
     0.05 around the embedding of word 2? *)
  let toks, label =
    List.find
      (fun (toks, label) ->
        Array.length toks > 2
        && Nn.Forward.predict program (Nn.Model.embed_tokens model toks) = label)
      corpus.Text.Corpus.test
  in
  let x = Nn.Model.embed_tokens model toks in
  Printf.printf "sentence: %s\nlabel: %s\n"
    (Text.Corpus.sentence corpus toks)
    (if label = 1 then "positive" else "negative");
  let region = Deept.Region.lp_ball ~p:Deept.Lp.L2 x ~word:2 ~radius:0.05 in
  let margin =
    Deept.Certify.certify_margin Deept.Config.fast program region ~true_class:label
  in
  Printf.printf "radius 0.05 at word 2: %s (margin %+.4f)\n"
    (if margin > 0.0 then "CERTIFIED" else "not certified")
    margin;

  (* 5. And the largest certified radius, by binary search. *)
  let r =
    Deept.Certify.certified_radius Deept.Config.fast program ~p:Deept.Lp.L2 x
      ~word:2 ~true_class:label ()
  in
  Printf.printf "maximal certified l2 radius at word 2: %.5f\n" r
