examples/synonym_attack.mli:
