examples/robustness_gap.ml: Array Attack Deept Float List Nn Printf Rng Tensor Text Zoo
