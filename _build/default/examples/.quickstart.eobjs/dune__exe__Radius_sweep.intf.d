examples/radius_sweep.mli:
