examples/quickstart.mli:
