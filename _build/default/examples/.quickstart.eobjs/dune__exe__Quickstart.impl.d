examples/quickstart.ml: Array Deept Format List Nn Printf Rng Tensor Text
