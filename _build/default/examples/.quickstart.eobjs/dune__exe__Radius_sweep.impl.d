examples/radius_sweep.ml: Array Deept Linrelax List Mat Nn Printf Tensor Text Zoo
