examples/vision_certify.ml: Array Deept Ir List Nn Printf Vision Zoo
