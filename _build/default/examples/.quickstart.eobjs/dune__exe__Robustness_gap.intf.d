examples/robustness_gap.mli:
