examples/vision_certify.mli:
