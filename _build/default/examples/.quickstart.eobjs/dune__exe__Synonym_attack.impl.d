examples/synonym_attack.ml: Array Deept List Nn Printf String Sys Text Zoo
