(* Certifying a Vision Transformer (Appendix A.3): lp robustness of image
   classification, end to end from pixels through the patch embedding and
   the encoder.

     dune exec examples/vision_certify.exe *)

let () =
  let model = Zoo.load_or_train ~log:print_endline "vit_1" in
  let program = Nn.Model.to_ir model in
  let images = Zoo.vision_data () in
  let eval = List.filteri (fun i _ -> i >= 400) images in
  Printf.printf "Vision Transformer: 7x7 patches, %d params\n"
    (Ir.num_params program);

  (* ASCII rendering of the first evaluation image. *)
  let img = List.hd eval in
  Printf.printf "input image (label %s):\n"
    (if img.Vision.Images.label = 0 then "'1'" else "'7'");
  for r = 0 to 27 do
    if r mod 2 = 0 then begin
      for c = 0 to 27 do
        let v = img.Vision.Images.pixels.((r * 28) + c) in
        print_char (if v > 0.6 then '#' else if v > 0.2 then '+' else '.')
      done;
      print_newline ()
    end
  done;

  let certified = ref 0 and total = ref 0 in
  List.iteri
    (fun i (im : Vision.Images.image) ->
      if i < 3 then begin
        let x = Vision.Images.patches im in
        let pred = Nn.Forward.predict program x in
        if pred = im.Vision.Images.label then begin
          incr total;
          List.iter
            (fun (p, hi) ->
              let r =
                Deept.Certify.max_radius ~hi ~iters:5 (fun radius ->
                    radius > 0.0
                    && Deept.Certify.certify Deept.Config.fast program
                         (Deept.Region.lp_ball_all ~p x ~radius)
                         ~true_class:pred)
              in
              if p = Deept.Lp.Linf && r > 0.0 then incr certified;
              Printf.printf "image %d  %-4s certified radius %.5f\n%!" i
                (Deept.Lp.to_string p) r)
            [ (Deept.Lp.L1, 1.0); (Deept.Lp.L2, 0.4); (Deept.Lp.Linf, 0.03) ]
        end
      end)
    eval;
  Printf.printf "\ncertified (linf, r > 0): %d / %d correctly classified\n"
    !certified !total
