(* The certified/attacked bracket: DeepT's certified radius lower-bounds
   the true robustness radius, a PGD attack upper-bounds it. The gap
   between them is the verifier's imprecision plus the attack's weakness —
   the fundamental picture behind all of the paper's radius tables.

     dune exec examples/robustness_gap.exe *)

open Tensor

let () =
  let model = Zoo.load_or_train ~log:print_endline "sst_3" in
  let corpus = Zoo.sst_corpus () in
  let program = Nn.Model.to_ir model in
  let rng = Rng.create 2026 in
  let toks, label =
    List.find
      (fun (toks, label) ->
        Array.length toks >= 5
        && Array.length toks <= 7
        && Nn.Forward.predict program (Nn.Model.embed_tokens model toks) = label)
      corpus.Text.Corpus.test
  in
  let x = Nn.Model.embed_tokens model toks in
  Printf.printf "sentence: %s\nlabel: %s\n\n"
    (Text.Corpus.sentence corpus toks)
    (if label = 1 then "positive" else "negative");
  Printf.printf "%-4s %-14s | %12s <= %12s | %s\n" "pos" "word" "certified"
    "attacked" "gap";
  Array.iteri
    (fun word tok ->
      let certified =
        Deept.Certify.certified_radius Deept.Config.fast program ~p:Deept.Lp.L2
          x ~word ~true_class:label ~hi:0.4 ~iters:6 ()
      in
      let attacked =
        Attack.attacked_radius ~iters:6 ~rng program ~p:Deept.Lp.L2 x ~word
          ~true_class:label ()
      in
      assert (certified <= attacked +. 1e-9);
      Printf.printf "%-4d %-14s | %12.5f <= %12.5f | %.2fx\n" word
        (Text.Corpus.word corpus tok)
        certified attacked
        (attacked /. Float.max certified 1e-9))
    toks;
  Printf.printf
    "\nEvery certified radius is below its attacked radius: the verifier is\n\
     sound, and the ratio shows how much room (abstraction looseness +\n\
     attack weakness) remains between the two bounds.\n"
