(* Trains the whole model zoo and reports held-out accuracies.

   Models are independent, so they train in parallel OCaml 5 domains
   (bounded by the CPU count). Re-running skips models whose files exist
   unless --force is given. *)

let usage = "train [--force] [--only NAME] [--jobs N] [--data DIR]"

let () =
  let force = ref false in
  let only = ref [] in
  let jobs = ref (max 1 (Domain.recommended_domain_count () - 1)) in
  let args =
    [
      ("--force", Arg.Set force, " retrain even if the model file exists");
      ("--only", Arg.String (fun s -> only := s :: !only), "NAME train only this entry (repeatable)");
      ("--jobs", Arg.Set_int jobs, "N parallel training domains");
      ("--data", Arg.String (fun s -> Zoo.data_dir := s), "DIR model directory (default data)");
    ]
  in
  Arg.parse args (fun s -> raise (Arg.Bad ("unexpected argument " ^ s))) usage;
  let entries =
    match !only with
    | [] -> Zoo.all
    | names -> List.map Zoo.entry names
  in
  let todo =
    List.filter (fun e -> !force || not (Sys.file_exists (Zoo.path e))) entries
  in
  let skipped = List.length entries - List.length todo in
  if skipped > 0 then Printf.printf "%d model(s) already trained, skipping\n%!" skipped;
  let mutex = Mutex.create () in
  let log line =
    Mutex.lock mutex;
    Printf.printf "%s\n%!" line;
    Mutex.unlock mutex
  in
  let queue = Queue.of_seq (List.to_seq todo) in
  let next () =
    Mutex.lock mutex;
    let e = if Queue.is_empty queue then None else Some (Queue.pop queue) in
    Mutex.unlock mutex;
    e
  in
  let worker () =
    let rec go () =
      match next () with
      | None -> ()
      | Some e ->
          let t0 = Unix.gettimeofday () in
          let model = Zoo.train_entry ~log e in
          let acc = Zoo.test_accuracy model e in
          log
            (Printf.sprintf "trained %-10s  test accuracy %.3f  (%.1fs)" e.Zoo.name
               acc
               (Unix.gettimeofday () -. t0));
          go ()
    in
    go ()
  in
  let n_domains = min !jobs (max 1 (List.length todo)) in
  let domains = List.init (max 0 (n_domains - 1)) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join domains;
  (* Final summary over everything requested. *)
  Printf.printf "\n== model zoo ==\n";
  List.iter
    (fun e ->
      let model = Zoo.load_or_train e.Zoo.name in
      Printf.printf "%-10s layers=%-2d d=%-3d h=%-3d  test acc %.3f\n" e.Zoo.name
        e.Zoo.cfg.Nn.Model.layers e.Zoo.cfg.Nn.Model.d_model
        e.Zoo.cfg.Nn.Model.d_hidden (Zoo.test_accuracy model e))
    entries
