(* Autodiff: every operation's gradient is validated against central finite
   differences, plus an end-to-end training smoke test. *)

open Tensor
module A = Nn.Autodiff

(* Numerical gradient of scalar_loss(param entries) at param. *)
let finite_diff ~loss (param : Mat.t) =
  let h = 1e-5 in
  let g = Mat.create (Mat.rows param) (Mat.cols param) in
  for i = 0 to Array.length param.Mat.data - 1 do
    let orig = param.Mat.data.(i) in
    param.Mat.data.(i) <- orig +. h;
    let fp = loss () in
    param.Mat.data.(i) <- orig -. h;
    let fm = loss () in
    param.Mat.data.(i) <- orig;
    g.Mat.data.(i) <- (fp -. fm) /. (2.0 *. h)
  done;
  g

(* Generic check: build a scalar loss from a parameter matrix through the op
   under test, compare autodiff and numeric gradients. *)
let check_op ~name ~rows ~cols build =
  let rng = Rng.create (Hashtbl.hash name) in
  let param = Mat.random_gaussian rng rows cols 0.7 in
  let run () =
    let tp = A.create () in
    let p = A.param tp param in
    let out = build tp p in
    (* reduce to a scalar: sum of entries via matmul with ones *)
    let r, c = Mat.dims (A.value out) in
    let left = A.const tp (Mat.make 1 r 1.0) in
    let right = A.const tp (Mat.make c 1 1.0) in
    let s = A.matmul (A.matmul left out) right in
    (tp, s)
  in
  let loss () =
    let _, s = run () in
    Mat.get (A.value s) 0 0
  in
  let tp, s = run () in
  A.backward tp s;
  let auto =
    match A.param_grads tp with
    | [ (_, g) ] -> g
    | gs -> (
        match List.find_opt (fun (m, _) -> m == param) gs with
        | Some (_, g) -> g
        | None -> Alcotest.failf "%s: parameter gradient missing" name)
  in
  let num = finite_diff ~loss param in
  if not (Mat.equal ~tol:1e-3 auto num) then
    Alcotest.failf "%s: gradient mismatch (max diff %g)" name
      (Mat.max_abs (Mat.sub auto num))

(* The auxiliary constant must be identical across the repeated forward
   evaluations of the finite-difference loop, so it is generated once. *)
let fixed rng r c = Mat.random_gaussian rng r c 0.8

let test_matmul () =
  let rng = Rng.create 1 in
  let c1 = fixed rng 4 2 and c2 = fixed rng 3 4 in
  check_op ~name:"matmul-left" ~rows:3 ~cols:4 (fun tp p ->
      A.matmul p (A.const tp c1));
  check_op ~name:"matmul-right" ~rows:4 ~cols:2 (fun tp p ->
      A.matmul (A.const tp c2) p)

let test_add_sub_hadamard () =
  let rng = Rng.create 2 in
  let c = fixed rng 3 3 in
  check_op ~name:"add" ~rows:3 ~cols:3 (fun tp p -> A.add p (A.const tp c));
  check_op ~name:"sub" ~rows:3 ~cols:3 (fun tp p -> A.sub (A.const tp c) p);
  check_op ~name:"hadamard" ~rows:3 ~cols:3 (fun tp p ->
      A.hadamard p (A.const tp c))

let test_scale_transpose () =
  check_op ~name:"scale" ~rows:2 ~cols:5 (fun _ p -> A.scale (-1.7) p);
  check_op ~name:"transpose" ~rows:2 ~cols:5 (fun _ p -> A.transpose p)

let test_bias_rows () =
  let rng = Rng.create 3 in
  let b = fixed rng 1 4 and x = fixed rng 3 4 in
  check_op ~name:"add_bias-x" ~rows:3 ~cols:4 (fun tp p ->
      A.add_bias p (A.const tp b));
  check_op ~name:"add_bias-b" ~rows:1 ~cols:4 (fun tp p ->
      A.add_bias (A.const tp x) p);
  check_op ~name:"mul_rows-x" ~rows:3 ~cols:4 (fun tp p ->
      A.mul_rows p (A.const tp b));
  check_op ~name:"mul_rows-g" ~rows:1 ~cols:4 (fun tp p ->
      A.mul_rows (A.const tp x) p)

let test_activations () =
  check_op ~name:"relu" ~rows:3 ~cols:4 (fun _ p -> A.relu p);
  check_op ~name:"tanh" ~rows:3 ~cols:4 (fun _ p -> A.tanh_ p);
  check_op ~name:"softmax_rows" ~rows:3 ~cols:4 (fun _ p -> A.softmax_rows p);
  check_op ~name:"center_rows" ~rows:3 ~cols:4 (fun _ p -> A.center_rows p);
  check_op ~name:"normalize_std" ~rows:3 ~cols:4 (fun _ p -> A.normalize_rows_std p)

let test_structure () =
  check_op ~name:"slice_cols" ~rows:3 ~cols:6 (fun _ p -> A.slice_cols p 1 3);
  check_op ~name:"slice_rows" ~rows:5 ~cols:3 (fun _ p -> A.slice_rows p 1 2);
  check_op ~name:"hcat" ~rows:3 ~cols:4 (fun _ p ->
      A.hcat [ A.slice_cols p 0 2; A.slice_cols p 2 2 ]);
  check_op ~name:"gather_rows" ~rows:6 ~cols:3 (fun _ p ->
      A.gather_rows p [| 0; 2; 2; 5 |])

let test_cross_entropy () =
  check_op ~name:"cross_entropy" ~rows:1 ~cols:4 (fun _ p ->
      A.cross_entropy_loss p 2)

let test_param_memoization () =
  let m = Mat.make 1 1 2.0 in
  let tp = A.create () in
  let p1 = A.param tp m and p2 = A.param tp m in
  Helpers.check_true "same node" (p1 == p2);
  (* y = p * p : dy/dp = 2p = 4 *)
  let y = A.hadamard p1 p2 in
  A.backward tp y;
  Helpers.check_float "accumulated grad" 4.0 (Mat.get (A.grad p1) 0 0)

(* Training decreases the loss and reaches high accuracy on a separable toy
   task: label = does the sequence contain token 1? *)
let test_training_learns () =
  let rng = Rng.create 123 in
  let cfg =
    { Nn.Model.default_config with vocab_size = 8; max_len = 5; d_model = 8;
      d_hidden = 8; heads = 2; layers = 1 }
  in
  let model = Nn.Model.create rng cfg in
  let mk_example () =
    let n = 3 + Rng.int rng 3 in
    let toks = Array.init n (fun _ -> 2 + Rng.int rng 6) in
    let label = if Rng.bool rng then 1 else 0 in
    if label = 1 then toks.(Rng.int rng n) <- 1;
    Nn.Train.token_example toks label
  in
  let data = List.init 200 (fun _ -> mk_example ()) in
  let losses = ref [] in
  Nn.Train.train_model
    ~log:(fun r -> losses := r.Nn.Train.loss :: !losses)
    ~epochs:12 ~batch:8 ~lr:5e-3 ~rng model data;
  let acc = Nn.Train.accuracy model data in
  Helpers.check_true
    (Printf.sprintf "training accuracy %.2f >= 0.9" acc)
    (acc >= 0.9);
  match !losses with
  | last :: _ ->
      let first = List.nth !losses (List.length !losses - 1) in
      Helpers.check_true "loss decreased" (last < first)
  | [] -> Alcotest.fail "no training reports"

let () =
  Alcotest.run "autodiff"
    [
      ( "gradients",
        [
          Alcotest.test_case "matmul" `Quick test_matmul;
          Alcotest.test_case "add/sub/hadamard" `Quick test_add_sub_hadamard;
          Alcotest.test_case "scale/transpose" `Quick test_scale_transpose;
          Alcotest.test_case "bias/rows" `Quick test_bias_rows;
          Alcotest.test_case "activations" `Quick test_activations;
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "cross entropy" `Quick test_cross_entropy;
          Alcotest.test_case "param memoization" `Quick test_param_memoization;
        ] );
      ( "training",
        [ Alcotest.test_case "learns toy task" `Slow test_training_learns ] );
    ]
