(* Shared test utilities: sampling-based soundness checks and tiny model
   builders used across the suites. *)

open Tensor
module Lp = Deept.Lp
module Zonotope = Deept.Zonotope

let rng_of seed = Rng.create seed

let check_float ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g (tol %g)" msg expected actual tol

let check_true msg b = Alcotest.(check bool) msg true b

(* A random multi-norm zonotope for property tests. *)
let random_zonotope ?(p = Lp.L2) ?(vrows = 2) ?(vcols = 3) ?(ep = 2) ?(ee = 3)
    ?(scale = 1.0) rng =
  let nv = vrows * vcols in
  Zonotope.make ~p
    ~center:(Mat.random_gaussian rng vrows vcols scale)
    ~phi:(Mat.random_gaussian rng nv ep (0.3 *. scale))
    ~eps:(Mat.random_gaussian rng nv ee (0.3 *. scale))

(* Soundness of an abstract transformer by sampling: for shared noise
   instantiations, the concrete function of the instantiated input must be
   covered by the output's affine part plus the slack of symbols the
   transformer created (all columns beyond the input's ε width). *)
let check_transformer_sound ?(samples = 100) ?(tol = 1e-6) ~name rng z_in z_out
    (f : Mat.t -> Mat.t) =
  let ee_in = Zonotope.num_eps z_in in
  for s = 1 to samples do
    let phi = Lp.unit_ball_sample rng z_in.Zonotope.p (Zonotope.num_phi z_in) in
    let eps = Array.init ee_in (fun _ -> Rng.uniform rng (-1.0) 1.0) in
    let x = Zonotope.instantiate z_in ~phi ~eps in
    let y_true = f x in
    let lin = Zonotope.instantiate z_out ~phi ~eps in
    let w = Zonotope.num_eps z_out in
    for v = 0 to Zonotope.num_vars z_out - 1 do
      let slack = ref 0.0 in
      for j = ee_in to w - 1 do
        slack := !slack +. Float.abs z_out.Zonotope.eps.Mat.data.((v * w) + j)
      done;
      let gap = Float.abs (y_true.Mat.data.(v) -. lin.Mat.data.(v)) in
      if gap > !slack +. tol then
        Alcotest.failf
          "%s: sample %d variable %d not covered: |%.9g - %.9g| = %.3e > slack %.3e"
          name s v y_true.Mat.data.(v) lin.Mat.data.(v) gap !slack
    done
  done

(* Weaker end-to-end check: concrete results of sampled inputs lie within the
   output zonotope's interval bounds. *)
let check_propagation_sound ?(samples = 50) ?(tol = 1e-6) ~name rng z_in z_out
    (f : Mat.t -> Mat.t) =
  let b = Zonotope.bounds z_out in
  for s = 1 to samples do
    let x = Zonotope.sample rng z_in in
    let y = f x in
    for v = 0 to Zonotope.num_vars z_out - 1 do
      let lo = b.Interval.Imat.lo.Mat.data.(v) and hi = b.Interval.Imat.hi.Mat.data.(v) in
      let yv = y.Mat.data.(v) in
      if yv < lo -. tol || yv > hi +. tol then
        Alcotest.failf "%s: sample %d var %d: %.9g outside [%.9g, %.9g]" name s v
          yv lo hi
    done
  done

(* Small trained-ish sentiment model (random weights are fine for soundness
   tests; training-dependent tests build their own). *)
let tiny_model ?(layers = 1) ?(divide_std = false) ?(d_model = 8) ?(heads = 2)
    ?(d_hidden = 8) seed =
  let rng = rng_of seed in
  let cfg =
    {
      Nn.Model.default_config with
      vocab_size = 16;
      max_len = 6;
      d_model;
      d_hidden;
      heads;
      layers;
      divide_std;
    }
  in
  Nn.Model.create rng cfg

let tiny_program ?layers ?divide_std ?d_model ?heads ?d_hidden seed =
  Nn.Model.to_ir (tiny_model ?layers ?divide_std ?d_model ?heads ?d_hidden seed)

let qcheck_case ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)
