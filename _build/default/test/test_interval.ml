(* Interval arithmetic and IBP: algebraic properties and inclusion of
   concrete executions. *)

open Tensor
open Interval

let itv = Alcotest.testable Itv.pp (fun a b -> a = b)

let test_basic_ops () =
  Alcotest.check itv "add" (Itv.make 3.0 7.0) (Itv.add (Itv.make 1.0 3.0) (Itv.make 2.0 4.0));
  Alcotest.check itv "sub" (Itv.make (-3.0) 1.0)
    (Itv.sub (Itv.make 1.0 3.0) (Itv.make 2.0 4.0));
  Alcotest.check itv "mul mixed" (Itv.make (-8.0) 12.0)
    (Itv.mul (Itv.make (-2.0) 3.0) (Itv.make 1.0 4.0));
  Alcotest.check itv "neg" (Itv.make (-3.0) 2.0) (Itv.neg (Itv.make (-2.0) 3.0));
  Alcotest.check itv "sq straddle" (Itv.make 0.0 9.0) (Itv.sq (Itv.make (-2.0) 3.0));
  Alcotest.check itv "abs" (Itv.make 0.0 3.0) (Itv.abs (Itv.make (-2.0) 3.0))

let test_div_recip () =
  Alcotest.check itv "recip" (Itv.make 0.25 0.5) (Itv.recip (Itv.make 2.0 4.0));
  Alcotest.check itv "div by negative" (Itv.make (-2.0) (-0.5))
    (Itv.div (Itv.make 1.0 2.0) (Itv.make (-2.0) (-1.0)));
  Alcotest.check_raises "div by zero-containing" (Invalid_argument "Itv.div: divisor contains zero")
    (fun () -> ignore (Itv.div (Itv.make 1.0 2.0) (Itv.make (-1.0) 1.0)))

(* Interval ops are inclusion monotone: f(x) in F([l,u]) for sampled x. *)
let test_inclusion_sampled () =
  let rng = Rng.create 31 in
  for _ = 1 to 500 do
    let l = Rng.uniform rng (-3.0) 3.0 in
    let u = l +. Rng.uniform rng 0.0 2.0 in
    let i = Itv.make l u in
    let x = Rng.uniform rng l u in
    Helpers.check_true "tanh" (Itv.contains (Itv.tanh_ i) (tanh x));
    Helpers.check_true "exp" (Itv.contains (Itv.exp_ i) (exp x));
    Helpers.check_true "relu" (Itv.contains (Itv.relu i) (Float.max 0.0 x));
    Helpers.check_true "sq" (Itv.contains (Itv.sq i) (x *. x));
    Helpers.check_true "mul_unit" (Itv.contains (Itv.mul_unit i) (x *. 0.7));
    Helpers.check_true "mul_pos_unit" (Itv.contains (Itv.mul_pos_unit i) (x *. 0.3))
  done

let test_imat_matmul_const () =
  let rng = Rng.create 5 in
  let c = Mat.random_gaussian rng 3 4 1.0 in
  let x = Imat.of_ball_linf c 0.1 in
  let w = Mat.random_gaussian rng 4 2 1.0 in
  let out = Imat.matmul_const x w in
  for _ = 1 to 200 do
    let sample =
      Mat.init 3 4 (fun i j -> Mat.get c i j +. Rng.uniform rng (-0.1) 0.1)
    in
    Helpers.check_true "matmul_const inclusion"
      (Imat.contains out (Mat.matmul sample w))
  done

(* The interval attention transformer alone is inclusion-sound. *)
let test_attention_inclusion () =
  let rng = Rng.create 55 in
  let d = 8 in
  let att : Ir.attention =
    {
      heads = 2;
      wq = Mat.random_gaussian rng d d 0.5;
      bq = Array.init d (fun _ -> Rng.gaussian rng);
      wk = Mat.random_gaussian rng d d 0.5;
      bk = Array.init d (fun _ -> Rng.gaussian rng);
      wv = Mat.random_gaussian rng d d 0.5;
      bv = Array.init d (fun _ -> Rng.gaussian rng);
      wo = Mat.random_gaussian rng d d 0.5;
      bo = Array.init d (fun _ -> Rng.gaussian rng);
    }
  in
  let c = Mat.random_gaussian rng 4 d 0.7 in
  let region = Imat.of_ball_linf c 0.05 in
  let out = Ibp.attention att region in
  for _ = 1 to 200 do
    let x = Mat.init 4 d (fun i j -> Mat.get c i j +. Rng.uniform rng (-0.05) 0.05) in
    Helpers.check_true "attention inclusion"
      (Imat.contains out (Nn.Forward.attention att x))
  done

let test_imat_ops () =
  let a = Imat.make (Mat.of_rows [| [| 0.0 |] |]) (Mat.of_rows [| [| 1.0 |] |]) in
  let b = Imat.make (Mat.of_rows [| [| 2.0 |] |]) (Mat.of_rows [| [| 3.0 |] |]) in
  let s = Imat.add a b in
  Helpers.check_float "add lo" 2.0 (Mat.get s.Imat.lo 0 0);
  Helpers.check_float "add hi" 4.0 (Mat.get s.Imat.hi 0 0);
  let d = Imat.sub a b in
  Helpers.check_float "sub lo" (-3.0) (Mat.get d.Imat.lo 0 0);
  Helpers.check_float "sub hi" (-1.0) (Mat.get d.Imat.hi 0 0);
  let m = Imat.mul_row_const a [| -2.0 |] in
  Helpers.check_float "mul_row_const lo" (-2.0) (Mat.get m.Imat.lo 0 0);
  Helpers.check_float "max_width" 1.0 (Imat.max_width a);
  Alcotest.check_raises "lo > hi rejected"
    (Invalid_argument "Imat.make: lo > hi somewhere") (fun () ->
      ignore (Imat.make (Mat.make 1 1 1.0) (Mat.make 1 1 0.0)))

(* IBP contains the concrete execution of a full transformer. *)
let test_ibp_sound () =
  List.iter
    (fun divide_std ->
      let p = Helpers.tiny_program ~layers:2 ~divide_std 7 in
      let rng = Rng.create 77 in
      let c = Mat.random_gaussian rng 4 (Ir.out_dim p 0) 0.7 in
      let region = Imat.of_ball_linf c 0.05 in
      let out = Ibp.run p region in
      for _ = 1 to 100 do
        let x =
          Mat.init (Mat.rows c) (Mat.cols c) (fun i j ->
              Mat.get c i j +. Rng.uniform rng (-0.05) 0.05)
        in
        Helpers.check_true
          (Printf.sprintf "ibp inclusion (divide_std=%b)" divide_std)
          (Imat.contains out (Nn.Forward.run p x))
      done)
    [ false; true ]

(* IBP certification at radius 0 equals concrete prediction correctness. *)
let test_ibp_zero_radius () =
  let p = Helpers.tiny_program ~layers:1 11 in
  let rng = Rng.create 13 in
  let c = Mat.random_gaussian rng 3 (Ir.out_dim p 0) 0.7 in
  let pred = Nn.Forward.predict p c in
  Helpers.check_true "zero radius certifies the prediction"
    (Ibp.certify p (Imat.of_mat c) ~true_class:pred);
  Helpers.check_true "zero radius refutes the other class"
    (not (Ibp.certify p (Imat.of_mat c) ~true_class:(1 - pred)))

(* IBP certification is monotone in the radius. *)
let test_ibp_monotone () =
  let p = Helpers.tiny_program ~layers:1 19 in
  let rng = Rng.create 19 in
  let c = Mat.random_gaussian rng 3 (Ir.out_dim p 0) 0.7 in
  let pred = Nn.Forward.predict p c in
  let certified r = Ibp.certify p (Imat.of_ball_linf c r) ~true_class:pred in
  let radii = [ 1e-5; 1e-4; 1e-3; 1e-2; 1e-1 ] in
  let results = List.map certified radii in
  let rec no_regain = function
    | a :: (b :: _ as rest) -> ((not b) || a) && no_regain rest
    | _ -> true
  in
  Helpers.check_true "certification monotone" (no_regain results)

let () =
  Alcotest.run "interval"
    [
      ( "itv",
        [
          Alcotest.test_case "basic ops" `Quick test_basic_ops;
          Alcotest.test_case "div/recip" `Quick test_div_recip;
          Alcotest.test_case "inclusion sampled" `Quick test_inclusion_sampled;
        ] );
      ( "imat",
        [
          Alcotest.test_case "matmul_const" `Quick test_imat_matmul_const;
          Alcotest.test_case "ops" `Quick test_imat_ops;
          Alcotest.test_case "attention inclusion" `Quick test_attention_inclusion;
        ] );
      ( "ibp",
        [
          Alcotest.test_case "sound" `Quick test_ibp_sound;
          Alcotest.test_case "zero radius" `Quick test_ibp_zero_radius;
          Alcotest.test_case "monotone" `Quick test_ibp_monotone;
        ] );
    ]
