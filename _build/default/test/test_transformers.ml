(* Soundness (by dense sampling) and precision properties of the non-affine
   abstract transformers: elementwise relaxations, the fast and precise dot
   products, softmax and its sum refinement. *)

open Tensor
module Z = Deept.Zonotope
module E = Deept.Elementwise
module Lp = Deept.Lp

let rng () = Helpers.rng_of 7

(* Pointwise relaxation coverage: for a dense grid of x in [l, u], f(x) must
   lie inside [lambda x + mu - beta, lambda x + mu + beta]. *)
let check_coeffs_cover ~name rule f ~l ~u =
  let c = rule ~l ~u in
  Helpers.check_true (name ^ ": beta >= 0") (c.E.beta >= -1e-12);
  for i = 0 to 200 do
    let x = l +. (float_of_int i /. 200.0 *. (u -. l)) in
    let y = f x in
    let mid = (c.E.lambda *. x) +. c.E.mu in
    if Float.abs (y -. mid) > c.E.beta +. 1e-9 then
      Alcotest.failf "%s: f(%g)=%g not covered (mid %g, beta %g) on [%g,%g]" name
        x y mid c.E.beta l u
  done

let ranges = [ (-3.0, 2.0); (-0.5, 0.7); (0.1, 4.0); (1e-4, 1e-3); (-5.0, -1.0) ]

let test_relu_coeffs () =
  List.iter
    (fun (l, u) ->
      check_coeffs_cover ~name:"relu" E.relu_coeffs (fun x -> Float.max 0.0 x) ~l ~u)
    ranges

let test_tanh_coeffs () =
  List.iter
    (fun (l, u) -> check_coeffs_cover ~name:"tanh" E.tanh_coeffs tanh ~l ~u)
    ranges

let test_exp_coeffs () =
  List.iter
    (fun (l, u) -> check_coeffs_cover ~name:"exp" E.exp_coeffs exp ~l ~u)
    (ranges @ [ (-20.0, 3.0); (50.0, 120.0) ]);
  (* positivity of the relaxation's lower edge (needed by recip) *)
  List.iter
    (fun (l, u) ->
      let c = E.exp_coeffs ~l ~u in
      let lo1 = (c.E.lambda *. l) +. c.E.mu -. c.E.beta in
      let lo2 = (c.E.lambda *. u) +. c.E.mu -. c.E.beta in
      Helpers.check_true "exp output positive" (Float.min lo1 lo2 > 0.0))
    ranges

let test_recip_coeffs () =
  List.iter
    (fun (l, u) ->
      check_coeffs_cover ~name:"recip" (fun ~l ~u -> E.recip_coeffs ~l ~u ()) (fun x -> 1.0 /. x) ~l ~u;
      let c = E.recip_coeffs ~l ~u () in
      let lo1 = (c.E.lambda *. l) +. c.E.mu -. c.E.beta in
      let lo2 = (c.E.lambda *. u) +. c.E.mu -. c.E.beta in
      Helpers.check_true "recip output positive" (Float.min lo1 lo2 > 0.0))
    [ (0.5, 2.0); (1.0, 30.0); (0.01, 0.02); (3.0, 3.5) ]

let test_sqrt_coeffs () =
  List.iter
    (fun (l, u) -> check_coeffs_cover ~name:"sqrt" E.sqrt_coeffs sqrt ~l ~u)
    [ (0.0, 2.0); (0.5, 9.0); (1e-5, 1e-4) ]

(* Whole-zonotope elementwise application. *)
let test_elementwise_zonotope () =
  let rng = rng () in
  List.iter
    (fun (name, apply, f) ->
      let ctx = Z.ctx () in
      let z = Helpers.random_zonotope ~p:Lp.L2 ~vrows:2 ~vcols:3 ~ee:4 rng in
      ignore (Z.alloc_eps ctx 4);
      let out = apply ctx z in
      Helpers.check_transformer_sound ~name rng z out (Mat.map f))
    [
      ("relu", E.relu, fun x -> Float.max 0.0 x);
      ("tanh", E.tanh_, tanh);
      ("exp", E.exp_, exp);
    ]

(* Dot products. *)
let mk_pair rng ~ee =
  let ctx = Z.ctx () in
  let a = Helpers.random_zonotope ~p:Lp.L2 ~vrows:2 ~vcols:3 ~ep:2 ~ee rng in
  let b = Helpers.random_zonotope ~p:Lp.L2 ~vrows:3 ~vcols:2 ~ep:2 ~ee rng in
  ignore (Z.alloc_eps ctx ee);
  (ctx, a, b)

(* Joint instantiation check: a and b share symbols, so we check the product
   against the affine output plus fresh-symbol slack. *)
let check_matmul_sound ~name ~precise rng =
  let ctx, a, b = mk_pair rng ~ee:4 in
  let out = Deept.Dot.matmul_zz ~precise ctx a b in
  for s = 1 to 300 do
    let phi = Lp.unit_ball_sample rng a.Z.p (Z.num_phi a) in
    let eps = Array.init 4 (fun _ -> Rng.uniform rng (-1.0) 1.0) in
    let xa = Z.instantiate a ~phi ~eps in
    let xb = Z.instantiate b ~phi ~eps in
    let y_true = Mat.matmul xa xb in
    let lin = Z.instantiate out ~phi ~eps in
    let w = Z.num_eps out in
    for v = 0 to Z.num_vars out - 1 do
      let slack = ref 0.0 in
      for j = 4 to w - 1 do
        slack := !slack +. Float.abs out.Z.eps.Mat.data.((v * w) + j)
      done;
      let gap = Float.abs (y_true.Mat.data.(v) -. lin.Mat.data.(v)) in
      if gap > !slack +. 1e-9 then
        Alcotest.failf "%s: sample %d var %d gap %.3e > slack %.3e" name s v gap
          !slack
    done
  done

let test_matmul_fast_sound () = check_matmul_sound ~name:"matmul fast" ~precise:false (rng ())
let test_matmul_precise_sound () =
  check_matmul_sound ~name:"matmul precise" ~precise:true (rng ())

(* Precise remainder is never looser than fast for pure-Linf zonotopes. *)
let test_precise_tighter () =
  let rng = rng () in
  for _ = 1 to 100 do
    let d = 1 + Rng.int rng 4 and e = 1 + Rng.int rng 6 in
    let b1 = Mat.random_gaussian rng d e 1.0 in
    let b2 = Mat.random_gaussian rng d e 1.0 in
    let fast =
      Deept.Dot.fast_abs_bound ~order:Deept.Config.Linf_first ~p1:Lp.Linf
        ~p2:Lp.Linf b1 b2
    in
    let p = Deept.Dot.precise_eps_bound b1 b2 in
    Helpers.check_true "precise within fast"
      (p.Interval.Itv.lo >= -.fast -. 1e-9 && p.Interval.Itv.hi <= fast +. 1e-9)
  done

(* Precise bound is itself sound: sample eps vectors. *)
let test_precise_eps_bound_sound () =
  let rng = rng () in
  for _ = 1 to 50 do
    let d = 1 + Rng.int rng 3 and e = 1 + Rng.int rng 5 in
    let b1 = Mat.random_gaussian rng d e 1.0 in
    let b2 = Mat.random_gaussian rng d e 1.0 in
    let itv = Deept.Dot.precise_eps_bound b1 b2 in
    for _ = 1 to 100 do
      let eps = Array.init e (fun _ -> Rng.uniform rng (-1.0) 1.0) in
      let v1 = Mat.mat_vec b1 eps and v2 = Mat.mat_vec b2 eps in
      let x = Vecops.dot v1 v2 in
      Helpers.check_true "precise bound covers"
        (x >= itv.Interval.Itv.lo -. 1e-9 && x <= itv.Interval.Itv.hi +. 1e-9)
    done
  done

(* Dual-norm cascade bound is sound for all norm combinations and orders. *)
let test_fast_bound_sound () =
  let rng = rng () in
  let norms = [ Lp.L1; Lp.L2; Lp.Linf ] in
  List.iter
    (fun p1 ->
      List.iter
        (fun p2 ->
          List.iter
            (fun order ->
              for _ = 1 to 20 do
                let d = 1 + Rng.int rng 3 in
                let e1 = 1 + Rng.int rng 4 and e2 = 1 + Rng.int rng 4 in
                let v = Mat.random_gaussian rng d e1 1.0 in
                let w = Mat.random_gaussian rng d e2 1.0 in
                let bound = Deept.Dot.fast_abs_bound ~order ~p1 ~p2 v w in
                for _ = 1 to 50 do
                  let x1 = Lp.unit_ball_sample rng p1 e1 in
                  let x2 = Lp.unit_ball_sample rng p2 e2 in
                  let prod = Vecops.dot (Mat.mat_vec v x1) (Mat.mat_vec w x2) in
                  Helpers.check_true "fast bound covers"
                    (Float.abs prod <= bound +. 1e-9)
                done
              done)
            [ Deept.Config.Linf_first; Deept.Config.Lp_first ])
        norms)
    norms

(* Multiplication transformer. *)
let test_mul_sound () =
  let rng = rng () in
  let ctx = Z.ctx () in
  let a = Helpers.random_zonotope ~p:Lp.L1 ~vrows:2 ~vcols:2 ~ee:3 rng in
  let b = Helpers.random_zonotope ~p:Lp.L1 ~vrows:2 ~vcols:2 ~ee:3 rng in
  ignore (Z.alloc_eps ctx 3);
  let out = Deept.Dot.mul_zz ctx a b in
  for _ = 1 to 300 do
    let phi = Lp.unit_ball_sample rng a.Z.p (Z.num_phi a) in
    let eps = Array.init 3 (fun _ -> Rng.uniform rng (-1.0) 1.0) in
    let y_true = Mat.mul (Z.instantiate a ~phi ~eps) (Z.instantiate b ~phi ~eps) in
    let lin = Z.instantiate out ~phi ~eps in
    let w = Z.num_eps out in
    for v = 0 to Z.num_vars out - 1 do
      let slack = ref 0.0 in
      for j = 3 to w - 1 do
        slack := !slack +. Float.abs out.Z.eps.Mat.data.((v * w) + j)
      done;
      Helpers.check_true "mul covered"
        (Float.abs (y_true.Mat.data.(v) -. lin.Mat.data.(v)) <= !slack +. 1e-9)
    done
  done

(* Softmax transformer: sound on both forms, outputs within (0, 1], and the
   stable form is tighter than the direct form. *)
let softmax_zonotope rng ~n ~ee =
  let ctx = Z.ctx () in
  let z = Helpers.random_zonotope ~p:Lp.L2 ~vrows:1 ~vcols:n ~ep:2 ~ee ~scale:1.0 rng in
  ignore (Z.alloc_eps ctx ee);
  (ctx, z)

let concrete_softmax x =
  let row = Mat.row x 0 in
  Mat.row_vector (Vecops.softmax row)

let check_softmax_sound ~form ~refine () =
  let rng = rng () in
  for _ = 1 to 10 do
    let ctx, z = softmax_zonotope rng ~n:4 ~ee:3 in
    let out = Deept.Softmax_t.apply_row ~form ~refine ctx z in
    (* Refinement rewrites symbol columns, so the affine-slack decomposition
       no longer applies; fall back to the bounds check. *)
    if refine then
      Helpers.check_propagation_sound ~samples:200 ~name:"softmax refined" rng z out
        concrete_softmax
    else
      Helpers.check_transformer_sound ~samples:200 ~name:"softmax" rng z out
        concrete_softmax
  done

let test_softmax_stable_sound () =
  check_softmax_sound ~form:Deept.Config.Stable ~refine:false ()

let test_softmax_direct_sound () =
  check_softmax_sound ~form:Deept.Config.Direct ~refine:false ()

let test_softmax_refined_sound () =
  check_softmax_sound ~form:Deept.Config.Stable ~refine:true ()

let test_softmax_output_range () =
  let rng = rng () in
  let ctx, z = softmax_zonotope rng ~n:5 ~ee:4 in
  let out =
    Deept.Softmax_t.apply_row ~form:Deept.Config.Stable ~refine:false ctx z
  in
  let b = Z.bounds out in
  for v = 0 to 4 do
    Helpers.check_true "softmax > 0" (b.Interval.Imat.lo.Mat.data.(v) > 0.0);
    Helpers.check_true "softmax <= 1" (b.Interval.Imat.hi.Mat.data.(v) <= 1.0 +. 1e-9)
  done

let width_sum (z : Z.t) =
  let b = Z.bounds z in
  Mat.sum (Mat.sub b.Interval.Imat.hi b.Interval.Imat.lo)

let test_stable_tighter_than_direct () =
  let rng = rng () in
  let total_stable = ref 0.0 and total_direct = ref 0.0 in
  for _ = 1 to 10 do
    let ctx, z = softmax_zonotope rng ~n:4 ~ee:3 in
    let s = Deept.Softmax_t.apply_row ~form:Deept.Config.Stable ~refine:false ctx z in
    total_stable := !total_stable +. width_sum s;
    let ctx2 = Z.ctx () in
    ignore (Z.alloc_eps ctx2 3);
    let d = Deept.Softmax_t.apply_row ~form:Deept.Config.Direct ~refine:false ctx2 z in
    total_direct := !total_direct +. width_sum d
  done;
  Helpers.check_true "stable form tighter on average" (!total_stable < !total_direct)

(* The refinement's purpose is to force the abstract outputs to behave like
   a distribution: the affine form of the row sum must become (nearly)
   the constant 1, strictly tighter than before refinement. Individual
   variable widths may grow slightly (the pivot elimination redistributes
   coefficient mass); the sum is the honest metric. *)
let sum_bounds (z : Z.t) =
  let n = Z.num_vars z in
  let zsum =
    Z.linear_map (Z.reshape_value z ~rows:1 ~cols:n) (Mat.make n 1 1.0) [| 0.0 |]
  in
  Z.bounds_var zsum 0

let test_refinement_tightens () =
  let rng = rng () in
  let improved = ref 0 in
  for _ = 1 to 20 do
    let ctx, z = softmax_zonotope rng ~n:4 ~ee:3 in
    let base = Deept.Softmax_t.apply_row ~form:Deept.Config.Stable ~refine:false ctx z in
    let refined = Deept.Refinement.softmax_sum base in
    let wb = Interval.Itv.width (sum_bounds base) in
    let wr = Interval.Itv.width (sum_bounds refined) in
    Helpers.check_true "sum bound never loosens" (wr <= wb +. 1e-9);
    if wr < wb -. 1e-9 then incr improved;
    (* The true sum, 1, stays inside the refined sum bound (up to fp). *)
    let sb = sum_bounds refined in
    Helpers.check_true "sum bound contains 1"
      (sb.Interval.Itv.lo <= 1.0 +. 1e-9 && sb.Interval.Itv.hi >= 1.0 -. 1e-9)
  done;
  Helpers.check_true "refinement tightens the sum" (!improved > 0)

(* Standard layer norm transformer soundness. *)
let test_std_norm_sound () =
  let rng = rng () in
  let ctx = Z.ctx () in
  let z = Helpers.random_zonotope ~p:Lp.L2 ~vrows:2 ~vcols:4 ~ee:3 ~scale:1.0 rng in
  ignore (Z.alloc_eps ctx 3);
  let gamma = Array.init 4 (fun _ -> 1.0 +. (0.1 *. Rng.gaussian rng)) in
  let beta = Array.init 4 (fun _ -> 0.1 *. Rng.gaussian rng) in
  let out = Deept.Std_norm.apply ctx z ~gamma ~beta in
  Helpers.check_propagation_sound ~samples:300 ~name:"std_norm" rng z out
    (fun x ->
      let means = Mat.row_means x in
      Mat.mapi
        (fun i j v ->
          let d = Mat.cols x in
          let var = ref 0.0 in
          for t = 0 to d - 1 do
            let u = Mat.get x i t -. means.(i) in
            var := !var +. (u *. u)
          done;
          let sigma = sqrt ((!var /. float_of_int d) +. 1e-5) in
          (gamma.(j) *. ((v -. means.(i)) /. sigma)) +. beta.(j))
        x)

let () =
  Alcotest.run "transformers"
    [
      ( "elementwise",
        [
          Alcotest.test_case "relu coeffs" `Quick test_relu_coeffs;
          Alcotest.test_case "tanh coeffs" `Quick test_tanh_coeffs;
          Alcotest.test_case "exp coeffs" `Quick test_exp_coeffs;
          Alcotest.test_case "recip coeffs" `Quick test_recip_coeffs;
          Alcotest.test_case "sqrt coeffs" `Quick test_sqrt_coeffs;
          Alcotest.test_case "zonotope application" `Quick test_elementwise_zonotope;
        ] );
      ( "dot",
        [
          Alcotest.test_case "fast bound sound" `Quick test_fast_bound_sound;
          Alcotest.test_case "matmul fast sound" `Quick test_matmul_fast_sound;
          Alcotest.test_case "matmul precise sound" `Quick test_matmul_precise_sound;
          Alcotest.test_case "precise <= fast" `Quick test_precise_tighter;
          Alcotest.test_case "precise eps bound sound" `Quick
            test_precise_eps_bound_sound;
          Alcotest.test_case "mul sound" `Quick test_mul_sound;
        ] );
      ( "softmax",
        [
          Alcotest.test_case "stable sound" `Quick test_softmax_stable_sound;
          Alcotest.test_case "direct sound" `Quick test_softmax_direct_sound;
          Alcotest.test_case "refined sound" `Quick test_softmax_refined_sound;
          Alcotest.test_case "output in (0,1]" `Quick test_softmax_output_range;
          Alcotest.test_case "stable tighter than direct" `Quick
            test_stable_tighter_than_direct;
          Alcotest.test_case "refinement tightens" `Quick test_refinement_tightens;
        ] );
      ( "std_norm",
        [ Alcotest.test_case "sound" `Quick test_std_norm_sound ] );
    ]
