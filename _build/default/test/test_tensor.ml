(* Tensor substrate: matrices, vectors, RNG determinism. *)

open Tensor

let test_rng_determinism () =
  let a = Rng.create 5 and b = Rng.create 5 in
  for _ = 1 to 100 do
    Helpers.check_float "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let c = Rng.split a in
  Helpers.check_true "split differs from parent" (Rng.float a <> Rng.float c)

let test_rng_ranges () =
  let r = Rng.create 9 in
  for _ = 1 to 1000 do
    let x = Rng.float r in
    Helpers.check_true "float in [0,1)" (x >= 0.0 && x < 1.0);
    let i = Rng.int r 7 in
    Helpers.check_true "int in range" (i >= 0 && i < 7)
  done

let test_gaussian_moments () =
  let r = Rng.create 11 in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Rng.gaussian r) in
  let mean = Vecops.mean xs in
  let var = Vecops.mean (Array.map (fun x -> (x -. mean) ** 2.0) xs) in
  Helpers.check_float ~tol:0.05 "mean ~ 0" 0.0 mean;
  Helpers.check_float ~tol:0.05 "var ~ 1" 1.0 var

let test_matmul () =
  let a = Mat.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Mat.of_rows [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Mat.matmul a b in
  Helpers.check_true "matmul values"
    (Mat.equal c (Mat.of_rows [| [| 19.0; 22.0 |]; [| 43.0; 50.0 |] |]))

let test_matmul_identity () =
  let rng = Rng.create 3 in
  let a = Mat.random_gaussian rng 4 4 1.0 in
  Helpers.check_true "a * I = a" (Mat.equal ~tol:1e-12 (Mat.matmul a (Mat.identity 4)) a);
  Helpers.check_true "I * a = a" (Mat.equal ~tol:1e-12 (Mat.matmul (Mat.identity 4) a) a)

let test_gemm_transposes () =
  let rng = Rng.create 4 in
  let a = Mat.random_gaussian rng 3 5 1.0 in
  let b = Mat.random_gaussian rng 3 4 1.0 in
  let direct = Mat.matmul (Mat.transpose a) b in
  Helpers.check_true "gemm ta" (Mat.equal ~tol:1e-12 (Mat.gemm ~ta:true a b) direct)

let test_transpose_involution () =
  let rng = Rng.create 6 in
  let a = Mat.random_gaussian rng 3 7 1.0 in
  Helpers.check_true "transpose twice" (Mat.equal (Mat.transpose (Mat.transpose a)) a)

let test_hcat_vcat () =
  let a = Mat.of_rows [| [| 1.0 |]; [| 2.0 |] |] in
  let b = Mat.of_rows [| [| 3.0 |]; [| 4.0 |] |] in
  Helpers.check_true "hcat"
    (Mat.equal (Mat.hcat a b) (Mat.of_rows [| [| 1.0; 3.0 |]; [| 2.0; 4.0 |] |]));
  Helpers.check_true "vcat"
    (Mat.equal (Mat.vcat a b) (Mat.of_rows [| [| 1.0 |]; [| 2.0 |]; [| 3.0 |]; [| 4.0 |] |]))

let test_sub_blocks () =
  let m = Mat.init 4 5 (fun i j -> float_of_int ((i * 10) + j)) in
  Helpers.check_float "sub_rows" 20.0 (Mat.get (Mat.sub_rows m 2 2) 0 0);
  Helpers.check_float "sub_cols" 2.0 (Mat.get (Mat.sub_cols m 2 2) 0 0);
  Helpers.check_float "select_cols" 4.0 (Mat.get (Mat.select_cols m [| 4; 0 |]) 0 0)

let test_row_norms () =
  let m = Mat.of_rows [| [| 3.0; -4.0 |]; [| 1.0; 1.0 |] |] in
  let l1 = Mat.row_lp_norms m 1.0 in
  let l2 = Mat.row_lp_norms m 2.0 in
  let li = Mat.row_lp_norms m infinity in
  Helpers.check_float "l1" 7.0 l1.(0);
  Helpers.check_float "l2" 5.0 l2.(0);
  Helpers.check_float "linf" 4.0 li.(0);
  Helpers.check_float ~tol:1e-12 "l2 row1" (sqrt 2.0) l2.(1)

let test_broadcast () =
  let m = Mat.make 2 3 1.0 in
  let v = [| 1.0; 2.0; 3.0 |] in
  Helpers.check_float "add_row_broadcast" 4.0 (Mat.get (Mat.add_row_broadcast m v) 0 2);
  Helpers.check_float "mul_row_broadcast" 3.0 (Mat.get (Mat.mul_row_broadcast m v) 1 2)

let test_inplace_ops () =
  let rng = Rng.create 21 in
  let a = Mat.random_gaussian rng 3 4 1.0 in
  let b = Mat.random_gaussian rng 3 4 1.0 in
  let acc = Mat.copy a in
  Mat.add_in_place acc b;
  Helpers.check_true "add_in_place" (Mat.equal ~tol:1e-12 acc (Mat.add a b));
  let acc2 = Mat.copy a in
  Mat.axpy 2.5 b acc2;
  Helpers.check_true "axpy" (Mat.equal ~tol:1e-12 acc2 (Mat.add a (Mat.scale 2.5 b)));
  let acc3 = Mat.copy a in
  Mat.scale_in_place (-3.0) acc3;
  Helpers.check_true "scale_in_place" (Mat.equal ~tol:1e-12 acc3 (Mat.scale (-3.0) a));
  let acc4 = Mat.copy a in
  Mat.fill acc4 7.0;
  Helpers.check_true "fill" (Mat.equal acc4 (Mat.make 3 4 7.0))

let test_reductions () =
  let m = Mat.of_rows [| [| 1.0; -2.0 |]; [| 3.0; 4.0 |] |] in
  Helpers.check_float "sum" 6.0 (Mat.sum m);
  Helpers.check_float ~tol:1e-12 "frobenius" (sqrt 30.0) (Mat.frobenius m);
  Helpers.check_float "max_abs" 4.0 (Mat.max_abs m);
  Helpers.check_true "row_sums" (Mat.row_sums m = [| -1.0; 7.0 |]);
  Helpers.check_true "row_means" (Mat.row_means m = [| -0.5; 3.5 |]);
  Helpers.check_true "col_sums" (Mat.col_sums m = [| 4.0; 2.0 |])

let test_mat_vec_products () =
  let m = Mat.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |] in
  Helpers.check_true "mat_vec" (Mat.mat_vec m [| 1.0; -1.0 |] = [| -1.0; -1.0; -1.0 |]);
  Helpers.check_true "vec_mat" (Mat.vec_mat [| 1.0; 0.0; -1.0 |] m = [| -4.0; -4.0 |])

let test_reshape_select () =
  let m = Mat.init 2 6 (fun i j -> float_of_int ((i * 6) + j)) in
  let r = Mat.reshape m ~rows:3 ~cols:4 in
  Helpers.check_float "reshape flat order" 5.0 (Mat.get r 1 1);
  Alcotest.check_raises "bad reshape" (Invalid_argument "Mat.reshape: size mismatch")
    (fun () -> ignore (Mat.reshape m ~rows:5 ~cols:2))

let test_vecops () =
  let v = [| 1.0; -2.0; 3.0 |] in
  Helpers.check_float "dot" 14.0 (Vecops.dot v v);
  Helpers.check_float "l1" 6.0 (Vecops.l1 v);
  Helpers.check_float ~tol:1e-12 "l2" (sqrt 14.0) (Vecops.l2 v);
  Helpers.check_float "linf" 3.0 (Vecops.linf v);
  Helpers.check_true "argmax" (Vecops.argmax v = 2);
  let s = Vecops.softmax v in
  Helpers.check_float ~tol:1e-12 "softmax sums to 1" 1.0 (Vecops.sum s);
  Helpers.check_float ~tol:1e-9 "logsumexp"
    (log (exp 1.0 +. exp (-2.0) +. exp 3.0))
    (Vecops.logsumexp v)

let test_softmax_stability () =
  let s = Vecops.softmax [| 1000.0; 1001.0 |] in
  Helpers.check_true "no nan" (Float.is_finite s.(0) && Float.is_finite s.(1));
  Helpers.check_float ~tol:1e-9 "sums to 1" 1.0 (Vecops.sum s)

let test_lp_norm_generic () =
  let v = [| 1.0; 2.0; 2.0 |] in
  Helpers.check_float ~tol:1e-9 "p=3" ((1.0 +. 8.0 +. 8.0) ** (1.0 /. 3.0))
    (Vecops.lp v 3.0)

let prop_matmul_assoc =
  Helpers.qcheck_case ~count:50 "matmul associativity"
    QCheck.(triple small_nat small_nat small_nat)
    (fun (a, b, c) ->
      let a = 1 + (a mod 4) and b = 1 + (b mod 4) and c = 1 + (c mod 4) in
      let rng = Rng.create (a + (10 * b) + (100 * c)) in
      let x = Mat.random_gaussian rng a b 1.0 in
      let y = Mat.random_gaussian rng b c 1.0 in
      let z = Mat.random_gaussian rng c a 1.0 in
      Mat.equal ~tol:1e-9
        (Mat.matmul (Mat.matmul x y) z)
        (Mat.matmul x (Mat.matmul y z)))

let prop_transpose_matmul =
  Helpers.qcheck_case ~count:50 "(AB)^T = B^T A^T"
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      let a = 1 + (a mod 5) and b = 1 + (b mod 5) in
      let rng = Rng.create ((31 * a) + b) in
      let x = Mat.random_gaussian rng a b 1.0 in
      let y = Mat.random_gaussian rng b a 1.0 in
      Mat.equal ~tol:1e-9
        (Mat.transpose (Mat.matmul x y))
        (Mat.gemm ~ta:true ~tb:true y x))

let () =
  Alcotest.run "tensor"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_determinism;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
        ] );
      ( "mat",
        [
          Alcotest.test_case "matmul" `Quick test_matmul;
          Alcotest.test_case "identity" `Quick test_matmul_identity;
          Alcotest.test_case "gemm transposes" `Quick test_gemm_transposes;
          Alcotest.test_case "transpose involution" `Quick test_transpose_involution;
          Alcotest.test_case "hcat/vcat" `Quick test_hcat_vcat;
          Alcotest.test_case "sub blocks" `Quick test_sub_blocks;
          Alcotest.test_case "row norms" `Quick test_row_norms;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          prop_matmul_assoc;
          prop_transpose_matmul;
        ] );
      ( "mat-extra",
        [
          Alcotest.test_case "in-place ops" `Quick test_inplace_ops;
          Alcotest.test_case "reductions" `Quick test_reductions;
          Alcotest.test_case "mat-vec" `Quick test_mat_vec_products;
          Alcotest.test_case "reshape" `Quick test_reshape_select;
        ] );
      ( "vecops",
        [
          Alcotest.test_case "basics" `Quick test_vecops;
          Alcotest.test_case "softmax stability" `Quick test_softmax_stability;
          Alcotest.test_case "generic lp" `Quick test_lp_norm_generic;
        ] );
    ]
