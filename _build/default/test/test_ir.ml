(* IR well-formedness, shape inference, serialization round-trips and the
   concrete interpreter against the training-time forward pass. *)

open Tensor

let test_validate_good () =
  let p = Helpers.tiny_program ~layers:2 1 in
  Helpers.check_true "valid program" (Result.is_ok (Ir.validate p))

let test_validate_bad_src () =
  let p : Ir.program = { input_dim = 4; ops = [| Ir.Relu 3 |] } in
  Helpers.check_true "future src rejected" (Result.is_error (Ir.validate p))

let test_validate_bad_shapes () =
  let w = Mat.create 3 2 in
  let p : Ir.program =
    { input_dim = 4; ops = [| Ir.Linear { src = 0; w; b = [| 0.0; 0.0 |] } |] }
  in
  Helpers.check_true "shape mismatch rejected" (Result.is_error (Ir.validate p))

let test_validate_bad_heads () =
  let d = 4 in
  let att : Ir.attention =
    {
      heads = 3;
      wq = Mat.create d d;
      bq = Array.make d 0.0;
      wk = Mat.create d d;
      bk = Array.make d 0.0;
      wv = Mat.create d d;
      bv = Array.make d 0.0;
      wo = Mat.create d d;
      bo = Array.make d 0.0;
    }
  in
  let p : Ir.program =
    { input_dim = d; ops = [| Ir.Self_attention { src = 0; att } |] }
  in
  Helpers.check_true "bad head count rejected" (Result.is_error (Ir.validate p))

let test_dims () =
  let p = Helpers.tiny_program ~layers:1 ~d_model:8 2 in
  Helpers.check_true "input dim" (Ir.out_dim p 0 = 8);
  Helpers.check_true "output dim" (Ir.out_dim p (Ir.output_id p) = 2)

let test_num_params_positive () =
  let p = Helpers.tiny_program 3 in
  Helpers.check_true "has parameters" (Ir.num_params p > 0)

let test_depth_of_kind () =
  let p = Helpers.tiny_program ~layers:3 4 in
  Helpers.check_true "3 attention layers" (Ir.depth_of_kind p "self_attention" = 3);
  Helpers.check_true "1 pool" (Ir.depth_of_kind p "pool_first" = 1)

let test_serialize_roundtrip () =
  let p = Helpers.tiny_program ~layers:2 ~divide_std:true 5 in
  let path = Filename.temp_file "deept_model" ".model" in
  Ir.Serialize.save path p;
  let q = Ir.Serialize.load path in
  Sys.remove path;
  (* Same structure and bit-identical outputs. *)
  Helpers.check_true "same op count" (Array.length p.ops = Array.length q.ops);
  let rng = Rng.create 17 in
  let x = Mat.random_gaussian rng 4 p.input_dim 1.0 in
  let yp = Nn.Forward.run p x and yq = Nn.Forward.run q x in
  Helpers.check_true "identical outputs" (Mat.equal ~tol:0.0 yp yq)

let test_serialize_rejects_garbage () =
  let path = Filename.temp_file "deept_bad" ".model" in
  Out_channel.with_open_text path (fun oc -> output_string oc "not a model\n");
  let raised =
    try
      ignore (Ir.Serialize.load path);
      false
    with Failure _ -> true
  in
  Sys.remove path;
  Helpers.check_true "garbage rejected" raised

(* The compiled IR agrees with the autodiff forward pass. *)
let test_ir_matches_training_forward () =
  List.iter
    (fun divide_std ->
      let m = Helpers.tiny_model ~layers:2 ~divide_std 6 in
      let p = Nn.Model.to_ir m in
      let tokens = [| 1; 5; 3; 2 |] in
      let tp = Nn.Autodiff.create () in
      let train_logits = Nn.Autodiff.value (Nn.Model.forward_tokens tp m tokens) in
      let ir_logits = Nn.Forward.run p (Nn.Model.embed_tokens m tokens) in
      Helpers.check_true
        (Printf.sprintf "ir = training forward (divide_std=%b)" divide_std)
        (Mat.equal ~tol:1e-9 train_logits ir_logits))
    [ false; true ]

let test_positional_op () =
  let rng = Rng.create 8 in
  let pos = Mat.random_gaussian rng 6 4 1.0 in
  let p : Ir.program =
    { input_dim = 4; ops = [| Ir.Positional { src = 0; pos } |] }
  in
  Ir.validate_exn p;
  let x = Mat.random_gaussian rng 3 4 1.0 in
  let y = Nn.Forward.run p x in
  Helpers.check_float "positional adds rows" (Mat.get x 2 1 +. Mat.get pos 2 1)
    (Mat.get y 2 1)

(* Round-trip a population of random architectures. *)
let test_serialize_fuzz () =
  let rng = Rng.create 99 in
  for trial = 1 to 15 do
    let layers = 1 + Rng.int rng 3 in
    let divide_std = Rng.bool rng in
    let d_model = 4 * (1 + Rng.int rng 3) in
    let heads = if d_model mod 8 = 0 && Rng.bool rng then 4 else 2 in
    let p = Helpers.tiny_program ~layers ~divide_std ~d_model ~heads (100 + trial) in
    let path = Filename.temp_file "deept_fuzz" ".model" in
    Ir.Serialize.save path p;
    let q = Ir.Serialize.load path in
    Sys.remove path;
    let x = Mat.random_gaussian rng 3 d_model 0.8 in
    Helpers.check_true
      (Printf.sprintf "fuzz roundtrip %d" trial)
      (Mat.equal ~tol:0.0 (Nn.Forward.run p x) (Nn.Forward.run q x))
  done

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_pp_smoke () =
  let p = Helpers.tiny_program 9 in
  let s = Format.asprintf "%a" Ir.pp p in
  Helpers.check_true "pp mentions attention" (contains_substring s "self_attention")

let () =
  Alcotest.run "ir"
    [
      ( "validate",
        [
          Alcotest.test_case "good" `Quick test_validate_good;
          Alcotest.test_case "bad src" `Quick test_validate_bad_src;
          Alcotest.test_case "bad shapes" `Quick test_validate_bad_shapes;
          Alcotest.test_case "bad heads" `Quick test_validate_bad_heads;
          Alcotest.test_case "dims" `Quick test_dims;
          Alcotest.test_case "num params" `Quick test_num_params_positive;
          Alcotest.test_case "depth of kind" `Quick test_depth_of_kind;
        ] );
      ( "serialize",
        [
          Alcotest.test_case "roundtrip" `Quick test_serialize_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_serialize_rejects_garbage;
          Alcotest.test_case "fuzz roundtrip" `Quick test_serialize_fuzz;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "ir = training forward" `Quick
            test_ir_matches_training_forward;
          Alcotest.test_case "positional" `Quick test_positional_op;
          Alcotest.test_case "pp" `Quick test_pp_smoke;
        ] );
    ]
