(* Multi-norm Zonotope domain: bounds tightness (Theorem 1), exactness of the
   affine transformers (Theorem 2), structural operations, reduction and the
   softmax-sum refinement machinery. *)

open Tensor
module Z = Deept.Zonotope
module Lp = Deept.Lp

let rng () = Helpers.rng_of 42

(* Instantiations always respect the bounds. *)
let test_bounds_sound () =
  let rng = rng () in
  List.iter
    (fun p ->
      let z = Helpers.random_zonotope ~p rng in
      let b = Z.bounds z in
      for _ = 1 to 200 do
        let x = Z.sample rng z in
        Helpers.check_true "sample within bounds" (Interval.Imat.contains b x)
      done)
    [ Lp.L1; Lp.L2; Lp.Linf ]

(* Bounds are tight: some instantiation approaches each bound. For Linf and
   L1 the extrema are attained at vertices; for L2 along the dual direction. *)
let test_bounds_tight () =
  let rng = rng () in
  List.iter
    (fun p ->
      let z = Helpers.random_zonotope ~p ~vrows:1 ~vcols:2 ~ep:3 ~ee:2 rng in
      let b = Z.bounds z in
      for v = 0 to Z.num_vars z - 1 do
        let _, alpha, beta = Z.var_affine z v in
        (* Construct the maximizing instantiation from the dual norm. *)
        let phi =
          match p with
          | Lp.Linf -> Array.map (fun a -> if a >= 0.0 then 1.0 else -1.0) alpha
          | Lp.L1 ->
              (* put all mass on the largest |alpha| coordinate *)
              let k = ref 0 in
              Array.iteri
                (fun i a -> if Float.abs a > Float.abs alpha.(!k) then k := i)
                alpha;
              Array.mapi
                (fun i a -> if i = !k then (if a >= 0.0 then 1.0 else -1.0) else 0.0)
                alpha
          | Lp.L2 ->
              let n = Vecops.l2 alpha in
              if n = 0.0 then Array.map (fun _ -> 0.0) alpha
              else Array.map (fun a -> a /. n) alpha
        in
        let eps = Array.map (fun b -> if b >= 0.0 then 1.0 else -1.0) beta in
        let x = Z.instantiate z ~phi ~eps in
        let hi = Mat.get b.Interval.Imat.hi (v / 2) (v mod 2) in
        Helpers.check_float ~tol:1e-9
          (Printf.sprintf "upper bound attained (p=%s)" (Lp.to_string p))
          hi x.Mat.data.(v)
      done)
    [ Lp.L1; Lp.L2; Lp.Linf ]

(* Affine ops are exact: instantiation commutes with the operation. *)
let test_linear_map_exact () =
  let rng = rng () in
  let z = Helpers.random_zonotope ~vrows:2 ~vcols:3 rng in
  let w = Mat.random_gaussian rng 3 4 1.0 in
  let b = Array.init 4 (fun _ -> Rng.gaussian rng) in
  let out = Z.linear_map z w b in
  for _ = 1 to 100 do
    let phi = Lp.unit_ball_sample rng z.Z.p (Z.num_phi z) in
    let eps = Array.init (Z.num_eps z) (fun _ -> Rng.uniform rng (-1.0) 1.0) in
    let x = Z.instantiate z ~phi ~eps in
    let expected = Mat.add_row_broadcast (Mat.matmul x w) b in
    let got = Z.instantiate out ~phi ~eps in
    Helpers.check_true "linear_map exact" (Mat.equal ~tol:1e-9 expected got)
  done

let test_add_exact () =
  let rng = rng () in
  let a = Helpers.random_zonotope ~ee:3 rng in
  let b = Helpers.random_zonotope ~ee:5 rng in
  let s = Z.add a b in
  for _ = 1 to 100 do
    let phi = Lp.unit_ball_sample rng a.Z.p (Z.num_phi a) in
    let eps = Array.init 5 (fun _ -> Rng.uniform rng (-1.0) 1.0) in
    let xa = Z.instantiate a ~phi ~eps:(Array.sub eps 0 3) in
    let xb = Z.instantiate b ~phi ~eps in
    let got = Z.instantiate s ~phi ~eps in
    Helpers.check_true "add exact" (Mat.equal ~tol:1e-9 (Mat.add xa xb) got)
  done

let test_center_rows_exact () =
  let rng = rng () in
  let z = Helpers.random_zonotope ~vrows:3 ~vcols:4 rng in
  let gamma = Array.init 4 (fun _ -> Rng.gaussian rng) in
  let beta = Array.init 4 (fun _ -> Rng.gaussian rng) in
  let out = Z.center_rows z ~gamma ~beta in
  for _ = 1 to 100 do
    let phi = Lp.unit_ball_sample rng z.Z.p (Z.num_phi z) in
    let eps = Array.init (Z.num_eps z) (fun _ -> Rng.uniform rng (-1.0) 1.0) in
    let x = Z.instantiate z ~phi ~eps in
    let means = Mat.row_means x in
    let expected =
      Mat.mapi (fun i j v -> (gamma.(j) *. (v -. means.(i))) +. beta.(j)) x
    in
    let got = Z.instantiate out ~phi ~eps in
    Helpers.check_true "center_rows exact" (Mat.equal ~tol:1e-9 expected got)
  done

let test_structural_reindex () =
  let rng = rng () in
  let z = Helpers.random_zonotope ~vrows:3 ~vcols:4 rng in
  let phi = Lp.unit_ball_sample rng z.Z.p (Z.num_phi z) in
  let eps = Array.init (Z.num_eps z) (fun _ -> Rng.uniform rng (-1.0) 1.0) in
  let x = Z.instantiate z ~phi ~eps in
  let t = Z.instantiate (Z.transpose_value z) ~phi ~eps in
  Helpers.check_true "transpose_value" (Mat.equal ~tol:0.0 (Mat.transpose x) t);
  let r = Z.instantiate (Z.select_value_rows z 1 2) ~phi ~eps in
  Helpers.check_true "select_value_rows" (Mat.equal ~tol:0.0 (Mat.sub_rows x 1 2) r);
  let c = Z.instantiate (Z.select_value_cols z 1 2) ~phi ~eps in
  Helpers.check_true "select_value_cols" (Mat.equal ~tol:0.0 (Mat.sub_cols x 1 2) c);
  let z2 = Helpers.random_zonotope ~vrows:3 ~vcols:2 ~ee:3 rng in
  let h = Z.hcat_value z z2 in
  let x2 = Z.instantiate z2 ~phi ~eps:(Array.sub eps 0 3) in
  let hx = Z.instantiate h ~phi ~eps in
  Helpers.check_true "hcat_value" (Mat.equal ~tol:0.0 (Mat.hcat x x2) hx);
  let m = Mat.random_gaussian rng 5 3 1.0 in
  let mz = Z.instantiate (Z.map_rows_affine z m) ~phi ~eps in
  Helpers.check_true "map_rows_affine" (Mat.equal ~tol:1e-9 (Mat.matmul m x) mz)

(* Reduction over-approximates: the reduced zonotope's bounds contain the
   original bounds, and every instantiation of the original is covered. *)
let test_reduction_sound () =
  let rng = rng () in
  let ctx = Z.ctx () in
  let z = Helpers.random_zonotope ~vrows:2 ~vcols:3 ~ee:12 rng in
  ignore (Z.alloc_eps ctx 12);
  let reduced = Deept.Reduction.decorrelate_min_k ctx z 4 in
  Helpers.check_true "reduced width" (Z.num_eps reduced <= 4 + Z.num_vars z);
  Helpers.check_true "ctx reset" (Z.ctx_symbols ctx = Z.num_eps reduced);
  let rb = Z.bounds reduced in
  for _ = 1 to 300 do
    let x = Z.sample rng z in
    Helpers.check_true "reduction covers original" (Interval.Imat.contains rb x)
  done

let test_reduction_noop_when_small () =
  let ctx = Z.ctx () in
  let rng = rng () in
  let z = Helpers.random_zonotope ~ee:3 rng in
  ignore (Z.alloc_eps ctx 3);
  let r = Deept.Reduction.decorrelate_min_k ctx z 8 in
  Helpers.check_true "no-op keeps width" (Z.num_eps r = 3)

(* Reduction keeps exactly the top-k columns by score. *)
let test_reduction_keeps_top_k () =
  let rng = rng () in
  let ctx = Z.ctx () in
  let z = Helpers.random_zonotope ~vrows:2 ~vcols:2 ~ee:10 rng in
  ignore (Z.alloc_eps ctx 10);
  let s = Deept.Reduction.scores z in
  Helpers.check_true "score length" (Array.length s = 10);
  (* scores are the column l1 masses *)
  for j = 0 to 9 do
    let mass = ref 0.0 in
    for v = 0 to 3 do
      mass := !mass +. Float.abs (Tensor.Mat.get z.Z.eps v j)
    done;
    Helpers.check_float ~tol:1e-12 "score = column mass" !mass s.(j)
  done;
  let reduced = Deept.Reduction.decorrelate_min_k ctx z 3 in
  (* the three kept columns carry the three largest scores *)
  let sorted = Array.copy s in
  Array.sort (fun a b -> compare b a) sorted;
  let kept = Deept.Reduction.scores (Z.make ~p:z.Z.p ~center:reduced.Z.center
      ~phi:reduced.Z.phi ~eps:(Tensor.Mat.sub_cols reduced.Z.eps 0 3)) in
  Array.sort (fun a b -> compare b a) kept;
  for i = 0 to 2 do
    Helpers.check_float ~tol:1e-12 "kept top column" sorted.(i) kept.(i)
  done

let test_reduction_deterministic () =
  let mk () =
    let rng = Helpers.rng_of 77 in
    let ctx = Z.ctx () in
    let z = Helpers.random_zonotope ~ee:12 rng in
    ignore (Z.alloc_eps ctx 12);
    Deept.Reduction.decorrelate_min_k ctx z 4
  in
  let a = mk () and b = mk () in
  Helpers.check_true "deterministic"
    (Tensor.Mat.equal a.Z.eps b.Z.eps && Tensor.Mat.equal a.Z.center b.Z.center)

(* Precise dot product never yields wider output bounds than Fast. *)
let test_precise_no_wider_end_to_end () =
  let rng = rng () in
  for _ = 1 to 20 do
    let mk ee =
      Helpers.random_zonotope ~p:Lp.Linf ~vrows:2 ~vcols:3 ~ep:0 ~ee rng
    in
    let a = mk 5 in
    let b =
      Z.make ~p:Lp.Linf
        ~center:(Tensor.Mat.random_gaussian rng 3 2 1.0)
        ~phi:(Tensor.Mat.create 6 0)
        ~eps:(Tensor.Mat.random_gaussian rng 6 5 0.3)
    in
    let run precise =
      let ctx = Z.ctx () in
      ignore (Z.alloc_eps ctx 5);
      Z.bounds (Deept.Dot.matmul_zz ~precise ctx a b)
    in
    let bf = run false and bp = run true in
    for v = 0 to 3 do
      let wf = bf.Interval.Imat.hi.Tensor.Mat.data.(v) -. bf.Interval.Imat.lo.Tensor.Mat.data.(v) in
      let wp = bp.Interval.Imat.hi.Tensor.Mat.data.(v) -. bp.Interval.Imat.lo.Tensor.Mat.data.(v) in
      Helpers.check_true "precise <= fast width" (wp <= wf +. 1e-9)
    done
  done

(* A.1 minimization: matches brute force on random instances. *)
let test_minimize_abs_sum () =
  let rng = rng () in
  for _ = 1 to 200 do
    let n = 1 + Rng.int rng 8 in
    let r = Array.init n (fun _ -> Rng.gaussian rng) in
    let s = Array.init n (fun _ -> Rng.gaussian rng) in
    let allowed = Array.init n (fun _ -> Rng.float rng > 0.3) in
    let f t =
      Array.to_list (Array.mapi (fun i ri -> Float.abs (ri +. (s.(i) *. t))) r)
      |> List.fold_left ( +. ) 0.0
    in
    let t_star = Deept.Refinement.minimize_abs_sum ~r ~s ~allowed in
    (* Compare against the best allowed breakpoint (plus t = 0 fallback). *)
    let candidates = ref [ ] in
    Array.iteri
      (fun i si ->
        if si <> 0.0 && allowed.(i) then candidates := (-.r.(i) /. si) :: !candidates)
      s;
    (match !candidates with
    | [] -> Helpers.check_float "fallback 0" 0.0 t_star
    | cs ->
        let best = List.fold_left (fun acc t -> Float.min acc (f t)) infinity cs in
        (* t_star must be at least as good as every allowed candidate. *)
        Helpers.check_true "minimizer optimal among allowed candidates"
          (f t_star <= best +. 1e-9))
  done

(* Figure 4: the example zonotope from the paper's caption. x = 4 + phi1 +
   phi2 - eps1 + 2 eps2, y = 3 + phi1 + phi2 + eps1 + eps2, ||phi||2 <= 1. *)
let test_figure4_bounds () =
  let center = Mat.of_rows [| [| 4.0; 3.0 |] |] in
  let phi = Mat.of_rows [| [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  let eps = Mat.of_rows [| [| -1.0; 2.0 |]; [| 1.0; 1.0 |] |] in
  let z = Z.make ~p:Lp.L2 ~center ~phi ~eps in
  let b = Z.bounds z in
  (* x: 4 ± (||(1,1)||_2 + |−1| + |2|) = 4 ± (√2 + 3) *)
  Helpers.check_float ~tol:1e-9 "x hi" (4.0 +. sqrt 2.0 +. 3.0)
    (Mat.get b.Interval.Imat.hi 0 0);
  Helpers.check_float ~tol:1e-9 "x lo" (4.0 -. sqrt 2.0 -. 3.0)
    (Mat.get b.Interval.Imat.lo 0 0);
  Helpers.check_float ~tol:1e-9 "y hi" (3.0 +. sqrt 2.0 +. 2.0)
    (Mat.get b.Interval.Imat.hi 0 1)

(* qcheck properties over randomly shaped zonotopes. *)
let gen_shape = QCheck.(quad (1 -- 3) (1 -- 4) (0 -- 3) (0 -- 5))

let prop_sample_in_bounds =
  Helpers.qcheck_case ~count:60 "samples lie in bounds" gen_shape
    (fun (vr, vc, ep, ee) ->
      let rng = Rng.create (vr + (7 * vc) + (31 * ep) + (101 * ee)) in
      let z = Helpers.random_zonotope ~vrows:vr ~vcols:vc ~ep ~ee rng in
      let b = Z.bounds z in
      let ok = ref true in
      for _ = 1 to 20 do
        if not (Interval.Imat.contains b (Z.sample rng z)) then ok := false
      done;
      !ok)

let prop_pad_idempotent =
  Helpers.qcheck_case ~count:60 "pad_eps is idempotent and semantic-preserving"
    gen_shape
    (fun (vr, vc, ep, ee) ->
      let rng = Rng.create (13 + vr + (7 * vc) + (31 * ep) + (101 * ee)) in
      let z = Helpers.random_zonotope ~vrows:vr ~vcols:vc ~ep ~ee rng in
      let p1 = Z.pad_eps z (ee + 3) in
      let p2 = Z.pad_eps p1 (ee + 3) in
      Z.num_eps p1 = ee + 3
      && Z.num_eps p2 = ee + 3
      && Mat.equal p1.Z.eps p2.Z.eps
      &&
      let phi = Deept.Lp.unit_ball_sample rng z.Z.p ep in
      let eps = Array.init ee (fun _ -> Rng.uniform rng (-1.0) 1.0) in
      Mat.equal ~tol:0.0 (Z.instantiate z ~phi ~eps) (Z.instantiate p1 ~phi ~eps))

let prop_affine_composition =
  Helpers.qcheck_case ~count:40 "linear_map composes" gen_shape
    (fun (vr, vc, ep, ee) ->
      let rng = Rng.create (29 + vr + (7 * vc) + (31 * ep) + (101 * ee)) in
      let z = Helpers.random_zonotope ~vrows:vr ~vcols:vc ~ep ~ee rng in
      let w1 = Mat.random_gaussian rng vc 3 1.0 in
      let w2 = Mat.random_gaussian rng 3 2 1.0 in
      let zero3 = Array.make 3 0.0 and zero2 = Array.make 2 0.0 in
      let a = Z.linear_map (Z.linear_map z w1 zero3) w2 zero2 in
      let b = Z.linear_map z (Mat.matmul w1 w2) zero2 in
      Mat.equal ~tol:1e-9 a.Z.center b.Z.center
      && Mat.equal ~tol:1e-9 a.Z.phi b.Z.phi
      && Mat.equal ~tol:1e-9 a.Z.eps b.Z.eps)

let prop_scale_neg =
  Helpers.qcheck_case ~count:60 "neg = scale (-1), bounds mirror" gen_shape
    (fun (vr, vc, ep, ee) ->
      let rng = Rng.create (41 + vr + (7 * vc) + (31 * ep) + (101 * ee)) in
      let z = Helpers.random_zonotope ~vrows:vr ~vcols:vc ~ep ~ee rng in
      let n = Z.neg z in
      let bz = Z.bounds z and bn = Z.bounds n in
      let ok = ref true in
      for v = 0 to Z.num_vars z - 1 do
        if
          Float.abs (bn.Interval.Imat.hi.Mat.data.(v) +. bz.Interval.Imat.lo.Mat.data.(v)) > 1e-9
          || Float.abs (bn.Interval.Imat.lo.Mat.data.(v) +. bz.Interval.Imat.hi.Mat.data.(v)) > 1e-9
        then ok := false
      done;
      !ok)

let () =
  Alcotest.run "zonotope"
    [
      ( "domain",
        [
          Alcotest.test_case "bounds sound" `Quick test_bounds_sound;
          Alcotest.test_case "bounds tight" `Quick test_bounds_tight;
          Alcotest.test_case "linear_map exact" `Quick test_linear_map_exact;
          Alcotest.test_case "add exact" `Quick test_add_exact;
          Alcotest.test_case "center_rows exact" `Quick test_center_rows_exact;
          Alcotest.test_case "structural ops" `Quick test_structural_reindex;
          Alcotest.test_case "figure 4 example" `Quick test_figure4_bounds;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "sound" `Quick test_reduction_sound;
          Alcotest.test_case "no-op below budget" `Quick test_reduction_noop_when_small;
          Alcotest.test_case "keeps top k" `Quick test_reduction_keeps_top_k;
          Alcotest.test_case "deterministic" `Quick test_reduction_deterministic;
          Alcotest.test_case "precise no wider" `Quick test_precise_no_wider_end_to_end;
        ] );
      ( "refinement",
        [ Alcotest.test_case "A.1 minimization" `Quick test_minimize_abs_sum ] );
      ( "properties",
        [
          prop_sample_in_bounds;
          prop_pad_idempotent;
          prop_affine_composition;
          prop_scale_neg;
        ] );
    ]
