(* Certification front-end: margin semantics, regions, the radius search
   and the synonym machinery. *)

open Tensor
module Z = Deept.Zonotope
module Lp = Deept.Lp
module C = Deept.Certify
module R = Deept.Region

let cfg = Deept.Config.fast

(* margin on a hand-built output zonotope: the affine difference cancels
   shared symbols, so the margin is strictly better than interval
   subtraction when outputs are correlated. *)
let test_margin_cancellation () =
  (* y0 = 1 + e1, y1 = e1: difference is exactly 1. *)
  let z =
    Z.make ~p:Lp.L2
      ~center:(Mat.of_rows [| [| 1.0; 0.0 |] |])
      ~phi:(Mat.create 2 0)
      ~eps:(Mat.of_rows [| [| 1.0 |]; [| 1.0 |] |])
  in
  Helpers.check_float "correlated margin exact" 1.0 (C.margin z ~true_class:0);
  (* interval subtraction would have given 1 - 2 = -1 *)
  let b = Z.bounds z in
  Helpers.check_float "naive interval margin" (-1.0)
    (Mat.get b.Interval.Imat.lo 0 0 -. Mat.get b.Interval.Imat.hi 0 1)

let test_margin_multiclass () =
  (* three classes; margin is the worst pairwise difference *)
  let z =
    Z.make ~p:Lp.Linf
      ~center:(Mat.of_rows [| [| 3.0; 1.0; 2.5 |] |])
      ~phi:(Mat.create 3 0)
      ~eps:(Mat.create 3 0)
  in
  Helpers.check_float "multiclass margin" 0.5 (C.margin z ~true_class:0)

let test_region_lp_ball_shapes () =
  let x = Mat.make 3 4 1.0 in
  List.iter
    (fun p ->
      let z = R.lp_ball ~p x ~word:1 ~radius:0.1 in
      Helpers.check_true "center preserved" (Mat.equal z.Z.center x);
      let symbol_count =
        match p with Lp.Linf -> Z.num_eps z | _ -> Z.num_phi z
      in
      Helpers.check_true "one symbol per perturbed dim" (symbol_count = 4);
      (* only the chosen word's row is perturbed *)
      let b = Z.bounds z in
      for i = 0 to 2 do
        for j = 0 to 3 do
          let w =
            Mat.get b.Interval.Imat.hi i j -. Mat.get b.Interval.Imat.lo i j
          in
          if i = 1 then Helpers.check_float "perturbed width" 0.2 w
          else Helpers.check_float "unperturbed width" 0.0 w
        done
      done)
    [ Lp.L1; Lp.L2; Lp.Linf ]

(* The l2 ball region is the exact ball: sampled memberships and the tight
   bound via the dual norm. *)
let test_region_l2_exact () =
  let rng = Rng.create 3 in
  let x = Mat.create 1 5 in
  let z = R.lp_ball ~p:Lp.L2 x ~word:0 ~radius:2.0 in
  for _ = 1 to 300 do
    let s = Z.sample rng z in
    Helpers.check_true "sample inside ball" (Vecops.l2 (Mat.row s 0) <= 2.0 +. 1e-9)
  done

let test_region_box_skips_degenerate () =
  let lo = Mat.of_rows [| [| 0.0; 1.0 |] |] in
  let hi = Mat.of_rows [| [| 0.0; 3.0 |] |] in
  let z = R.box lo hi in
  Helpers.check_true "one symbol only" (Z.num_eps z = 1);
  let b = Z.bounds z in
  Helpers.check_float "degenerate entry fixed" 0.0 (Mat.get b.Interval.Imat.hi 0 0);
  Helpers.check_float "box hi" 3.0 (Mat.get b.Interval.Imat.hi 0 1);
  Helpers.check_float "box lo" 1.0 (Mat.get b.Interval.Imat.lo 0 1)

let test_region_errors () =
  let x = Mat.make 2 3 0.0 in
  Alcotest.check_raises "negative radius"
    (Invalid_argument "Region.lp_ball: negative radius") (fun () ->
      ignore (R.lp_ball ~p:Lp.L2 x ~word:0 ~radius:(-1.0)));
  Alcotest.check_raises "word out of range"
    (Invalid_argument "Region.lp_ball: word out of range") (fun () ->
      ignore (R.lp_ball ~p:Lp.L2 x ~word:5 ~radius:0.1))

let test_synonym_box_covers_all () =
  let rng = Rng.create 5 in
  let x = Mat.random_gaussian rng 3 4 1.0 in
  let alt1 = Array.init 4 (fun j -> Mat.get x 1 j +. 0.3) in
  let alt2 = Array.init 4 (fun j -> Mat.get x 1 j -. 0.2) in
  let z = R.synonym_box x [ (1, [ alt1; alt2 ]) ] in
  let b = Z.bounds z in
  (* original and both alternatives inside *)
  Helpers.check_true "original inside" (Interval.Imat.contains b x);
  let with_row m pos (row : float array) =
    Mat.mapi (fun i j v -> if i = pos then row.(j) else v) m
  in
  Helpers.check_true "alt1 inside" (Interval.Imat.contains b (with_row x 1 alt1));
  Helpers.check_true "alt2 inside" (Interval.Imat.contains b (with_row x 1 alt2))

let test_count_combinations () =
  Helpers.check_true "empty" (C.count_combinations [] = 1);
  Helpers.check_true "two words"
    (C.count_combinations [ (0, [ [||]; [||] ]); (2, [ [||] ]) ] = 6)

let test_enumeration_limit () =
  let program = Helpers.tiny_program ~layers:1 61 in
  let rng = Rng.create 6 in
  let d = Ir.out_dim program 0 in
  let x = Mat.random_gaussian rng 3 d 0.7 in
  let pred = Nn.Forward.predict program x in
  let alts = List.init 9 (fun _ -> Array.init d (fun j -> Mat.get x 0 j +. 0.001 *. float_of_int j)) in
  let subs = [ (0, alts); (1, alts); (2, alts) ] in
  (* 1000 combinations, limit at 50 *)
  let _, checked = C.enumerate_synonyms ~limit:50 program x subs ~true_class:pred in
  Helpers.check_true "limit respected" (checked <= 50)

let test_enumeration_finds_attack () =
  let program = Helpers.tiny_program ~layers:1 62 in
  let rng = Rng.create 7 in
  let d = Ir.out_dim program 0 in
  let x = Mat.random_gaussian rng 3 d 0.7 in
  let pred = Nn.Forward.predict program x in
  (* a wild alternative far outside the data distribution should flip it *)
  let wild = Array.make d 100.0 in
  let ok, _ = C.enumerate_synonyms program x [ (1, [ wild ]) ] ~true_class:pred in
  (* either it flips (expected) or the model is flat; check agreement with a
     direct forward run *)
  let flipped =
    Nn.Forward.predict program
      (Mat.mapi (fun i _ v -> if i = 1 then 100.0 else v) x)
    <> pred
  in
  Helpers.check_true "enumeration agrees with forward" (ok = not flipped)

let test_radius_search_monotone_grid () =
  (* the result is always a certified radius: re-checking it must pass *)
  let program = Helpers.tiny_program ~layers:1 63 in
  let rng = Rng.create 8 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim program 0) 0.7 in
  let pred = Nn.Forward.predict program x in
  let r = C.certified_radius cfg program ~p:Lp.L2 x ~word:1 ~true_class:pred ~iters:6 () in
  if r > 0.0 then
    Helpers.check_true "returned radius certifies"
      (C.certify cfg program (R.lp_ball ~p:Lp.L2 x ~word:1 ~radius:r) ~true_class:pred)

let () =
  Alcotest.run "certify"
    [
      ( "margin",
        [
          Alcotest.test_case "cancellation" `Quick test_margin_cancellation;
          Alcotest.test_case "multiclass" `Quick test_margin_multiclass;
        ] );
      ( "regions",
        [
          Alcotest.test_case "lp ball shapes" `Quick test_region_lp_ball_shapes;
          Alcotest.test_case "l2 exact" `Quick test_region_l2_exact;
          Alcotest.test_case "box degenerate" `Quick test_region_box_skips_degenerate;
          Alcotest.test_case "errors" `Quick test_region_errors;
          Alcotest.test_case "synonym box" `Quick test_synonym_box_covers_all;
        ] );
      ( "enumeration",
        [
          Alcotest.test_case "combinations" `Quick test_count_combinations;
          Alcotest.test_case "limit" `Quick test_enumeration_limit;
          Alcotest.test_case "finds attack" `Quick test_enumeration_finds_attack;
        ] );
      ( "search",
        [ Alcotest.test_case "result certifies" `Quick test_radius_search_monotone_grid ] );
    ]
