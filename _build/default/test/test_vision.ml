(* Synthetic images, patch extraction, MLP substrate, model persistence. *)

open Tensor

let test_image_properties () =
  let imgs = Vision.Images.generate (Rng.create 3) 40 in
  Helpers.check_true "count" (List.length imgs = 40);
  let ones = List.length (List.filter (fun i -> i.Vision.Images.label = 0) imgs) in
  Helpers.check_true "balanced" (ones = 20);
  List.iter
    (fun (img : Vision.Images.image) ->
      Helpers.check_true "pixel count" (Array.length img.pixels = 28 * 28);
      Array.iter
        (fun p -> Helpers.check_true "pixel range" (p >= 0.0 && p <= 1.0))
        img.pixels;
      Helpers.check_true "has ink" (Vecops.sum img.pixels > 5.0))
    imgs

let test_classes_differ () =
  (* "7"s have much more ink in the top half than "1"s relative to total. *)
  let imgs = Vision.Images.generate (Rng.create 4) 100 in
  let top_frac (img : Vision.Images.image) =
    let top = ref 0.0 and total = ref 0.0 in
    Array.iteri
      (fun i p ->
        total := !total +. p;
        if i / 28 < 10 then top := !top +. p)
      img.pixels;
    !top /. Float.max !total 1e-9
  in
  let avg label =
    let xs = List.filter (fun i -> i.Vision.Images.label = label) imgs in
    List.fold_left (fun a i -> a +. top_frac i) 0.0 xs /. float_of_int (List.length xs)
  in
  Helpers.check_true "7s are top-heavy" (avg 1 > avg 0 +. 0.05)

let test_patches_roundtrip () =
  let img = List.hd (Vision.Images.generate (Rng.create 5) 2) in
  let p = Vision.Images.patches img in
  Helpers.check_true "patch dims" (Mat.dims p = (16, 49));
  (* pixel (r, c) appears at the right patch position *)
  let r = 10 and c = 20 in
  let pr = r / 7 and pc = c / 7 in
  let k = ((r mod 7) * 7) + (c mod 7) in
  Helpers.check_float "patch value" img.pixels.((r * 28) + c)
    (Mat.get p ((pr * 4) + pc) k);
  Helpers.check_float "flat sum = patch sum" (Mat.sum (Vision.Images.flat img))
    (Mat.sum p)

let test_features () =
  let img = List.hd (Vision.Images.generate (Rng.create 6) 2) in
  let f = Vision.Images.features img in
  Helpers.check_true "feature dims" (Mat.dims f = (1, 4));
  Helpers.check_true "features in [0,5]"
    (Array.for_all (fun v -> v >= 0.0 && v <= 5.0) (Mat.row f 0))

let test_mlp_learns_features () =
  let rng = Rng.create 7 in
  let imgs = Vision.Images.generate rng 300 in
  let data =
    List.map (fun i -> (Vision.Images.features i, i.Vision.Images.label)) imgs
  in
  let mlp = Nn.Mlp.create rng ~dims:[ 4; 10; 10; 2 ] in
  Nn.Mlp.train ~epochs:30 ~lr:5e-3 ~rng mlp data;
  let acc = Nn.Mlp.accuracy mlp data in
  Helpers.check_true (Printf.sprintf "mlp accuracy %.2f" acc) (acc >= 0.95)

let test_mlp_ir_matches () =
  let rng = Rng.create 8 in
  let mlp = Nn.Mlp.create rng ~dims:[ 4; 6; 2 ] in
  let prog = Nn.Mlp.to_ir mlp in
  let x = Mat.random_gaussian rng 1 4 1.0 in
  let tp = Nn.Autodiff.create () in
  let train_out = Nn.Autodiff.value (Nn.Mlp.forward tp mlp x) in
  Helpers.check_true "forward = ir" (Mat.equal ~tol:1e-9 train_out (Nn.Forward.run prog x))

let test_model_save_load () =
  let m = Helpers.tiny_model ~layers:2 9 in
  let path = Filename.temp_file "deept_nn" ".model" in
  Nn.Model.save path m;
  let m2 = Nn.Model.load path in
  Sys.remove path;
  let toks = [| 0; 3; 5 |] in
  Helpers.check_true "identical embeddings"
    (Mat.equal ~tol:0.0 (Nn.Model.embed_tokens m toks) (Nn.Model.embed_tokens m2 toks));
  let x = Nn.Model.embed_tokens m toks in
  Helpers.check_true "identical ir outputs"
    (Mat.equal ~tol:0.0
       (Nn.Forward.run (Nn.Model.to_ir m) x)
       (Nn.Forward.run (Nn.Model.to_ir m2) x))

let test_vit_builds () =
  let rng = Rng.create 10 in
  let cfg =
    { Nn.Model.default_config with vocab_size = 1; max_len = 16; d_model = 16;
      d_hidden = 16; heads = 2; layers = 1; patch_dim = Some 49 }
  in
  let vit = Nn.Model.create rng cfg in
  let prog = Nn.Model.to_ir vit in
  let img = List.hd (Vision.Images.generate rng 2) in
  let out = Nn.Forward.run prog (Vision.Images.patches img) in
  Helpers.check_true "vit output 1x2" (Mat.dims out = (1, 2))

let () =
  Alcotest.run "vision"
    [
      ( "images",
        [
          Alcotest.test_case "properties" `Quick test_image_properties;
          Alcotest.test_case "classes differ" `Quick test_classes_differ;
          Alcotest.test_case "patches" `Quick test_patches_roundtrip;
          Alcotest.test_case "features" `Quick test_features;
        ] );
      ( "models",
        [
          Alcotest.test_case "mlp learns" `Slow test_mlp_learns_features;
          Alcotest.test_case "mlp ir" `Quick test_mlp_ir_matches;
          Alcotest.test_case "model save/load" `Quick test_model_save_load;
          Alcotest.test_case "vit builds" `Quick test_vit_builds;
        ] );
    ]
