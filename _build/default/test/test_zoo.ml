(* Experiment zoo: entry consistency, corpora determinism and shapes.
   (Training itself is exercised by bin/train and the autodiff suite.) *)

let test_entries_well_formed () =
  Helpers.check_true "non-empty zoo" (List.length Zoo.all >= 15);
  List.iter
    (fun (e : Zoo.entry) ->
      let cfg = e.Zoo.cfg in
      Helpers.check_true (e.Zoo.name ^ ": heads divide d_model")
        (cfg.Nn.Model.d_model mod cfg.Nn.Model.heads = 0);
      Helpers.check_true (e.Zoo.name ^ ": positive epochs") (e.Zoo.epochs > 0);
      Helpers.check_true (e.Zoo.name ^ ": positive lr") (e.Zoo.lr > 0.0);
      match e.Zoo.corpus with
      | Zoo.Vision_task ->
          Helpers.check_true (e.Zoo.name ^ ": vision has patches")
            (cfg.Nn.Model.patch_dim <> None)
      | k ->
          let c = Zoo.corpus_of k in
          Helpers.check_true (e.Zoo.name ^ ": vocab matches corpus")
            (cfg.Nn.Model.vocab_size = Array.length c.Text.Corpus.vocab);
          Helpers.check_true (e.Zoo.name ^ ": max_len matches corpus")
            (cfg.Nn.Model.max_len = c.Text.Corpus.max_len))
    Zoo.all

let test_unique_names () =
  let names = List.map (fun e -> e.Zoo.name) Zoo.all in
  Helpers.check_true "unique names"
    (List.length names = List.length (List.sort_uniq compare names))

let test_expected_members () =
  List.iter
    (fun name ->
      Helpers.check_true (name ^ " exists")
        (match Zoo.entry name with _ -> true | exception Not_found -> false))
    [ "sst_3"; "sst_6"; "sst_12"; "yelp_12"; "wide_12"; "small_3"; "std_6";
      "robust_3"; "vit_1" ]

let test_corpora_cached_and_deterministic () =
  let a = Zoo.sst_corpus () and b = Zoo.sst_corpus () in
  Helpers.check_true "cached (physical equality)" (a == b);
  Helpers.check_true "expected sizes"
    (List.length a.Text.Corpus.train = 1600 && List.length a.Text.Corpus.test = 200)

let test_vision_data () =
  let imgs = Zoo.vision_data () in
  Helpers.check_true "600 images" (List.length imgs = 600)

let test_depth_profile () =
  List.iter
    (fun m ->
      let e = Zoo.entry (Printf.sprintf "sst_%d" m) in
      Helpers.check_true "layers match name" (e.Zoo.cfg.Nn.Model.layers = m))
    [ 3; 6; 12 ]

let () =
  Alcotest.run "zoo"
    [
      ( "entries",
        [
          Alcotest.test_case "well formed" `Quick test_entries_well_formed;
          Alcotest.test_case "unique names" `Quick test_unique_names;
          Alcotest.test_case "expected members" `Quick test_expected_members;
          Alcotest.test_case "depth profile" `Quick test_depth_profile;
        ] );
      ( "data",
        [
          Alcotest.test_case "corpora" `Quick test_corpora_cached_and_deterministic;
          Alcotest.test_case "vision" `Quick test_vision_data;
        ] );
    ]
