(* Complete branch-and-bound verifier (the GeoCert stand-in). *)

open Tensor
module Lp = Deept.Lp

let trained_mlp seed =
  let rng = Rng.create seed in
  let imgs = Vision.Images.generate rng 240 in
  let data =
    List.map (fun i -> (Vision.Images.features i, i.Vision.Images.label)) imgs
  in
  let mlp = Nn.Mlp.create rng ~dims:[ 4; 8; 8; 2 ] in
  Nn.Mlp.train ~epochs:25 ~lr:5e-3 ~rng mlp data;
  (Nn.Mlp.to_ir mlp, data)

let test_zero_radius_robust () =
  let prog, data = trained_mlp 20 in
  let x, _ = List.hd data in
  let pred = Nn.Forward.predict prog x in
  let r =
    Complete.Bab.verify prog ~p:Lp.L2 ~center:(Mat.row x 0) ~radius:1e-9
      ~true_class:pred
  in
  Helpers.check_true "tiny radius robust" (r = Complete.Bab.Robust)

let test_huge_radius_counterexample () =
  let prog, data = trained_mlp 21 in
  (* pick a correctly classified example *)
  let x, label =
    List.find (fun (x, l) -> Nn.Forward.predict prog x = l) data
  in
  match
    Complete.Bab.verify prog ~p:Lp.Linf ~center:(Mat.row x 0) ~radius:5.0
      ~true_class:label
  with
  | Complete.Bab.Counterexample cex ->
      (* the counterexample is genuinely misclassified and inside the ball *)
      Helpers.check_true "cex misclassified"
        (Nn.Forward.predict prog (Mat.row_vector cex) <> label);
      let delta = Array.mapi (fun i v -> v -. Mat.get x 0 i) cex in
      Helpers.check_true "cex in ball" (Vecops.linf delta <= 5.0 +. 1e-9)
  | Complete.Bab.Robust -> Alcotest.fail "radius 5 should not be robust"
  | Complete.Bab.Unknown -> Alcotest.fail "search exhausted unexpectedly"

let test_complete_beats_zonotope () =
  let prog, data = trained_mlp 22 in
  let x, label =
    List.find (fun (x, l) -> Nn.Forward.predict prog x = l) data
  in
  let center = Mat.row x 0 in
  let cfg = { Deept.Config.default with Deept.Config.reduction_k = 0 } in
  let z_radius =
    Deept.Certify.certified_radius cfg prog ~p:Lp.L2 x ~word:0 ~true_class:label
      ~iters:10 ()
  in
  let c_radius =
    Complete.Bab.certified_radius ~iters:10 prog ~p:Lp.L2 ~center
      ~true_class:label ()
  in
  Helpers.check_true
    (Printf.sprintf "complete radius %.4g >= zonotope radius %.4g" c_radius
       z_radius)
    (c_radius >= z_radius -. 1e-6);
  Helpers.check_true "complete radius positive" (c_radius > 0.0)

let test_monotone () =
  let prog, data = trained_mlp 23 in
  let x, label =
    List.find (fun (x, l) -> Nn.Forward.predict prog x = l) data
  in
  let center = Mat.row x 0 in
  let robust r =
    Complete.Bab.verify prog ~p:Lp.L2 ~center ~radius:r ~true_class:label
    = Complete.Bab.Robust
  in
  let results = List.map robust [ 1e-4; 1e-3; 1e-2; 1e-1; 0.5 ] in
  let rec no_regain = function
    | a :: (b :: _ as rest) -> ((not b) || a) && no_regain rest
    | _ -> true
  in
  Helpers.check_true "robustness monotone in radius" (no_regain results)

let () =
  Alcotest.run "complete"
    [
      ( "bab",
        [
          Alcotest.test_case "zero radius" `Quick test_zero_radius_robust;
          Alcotest.test_case "counterexample" `Quick test_huge_radius_counterexample;
          Alcotest.test_case "beats zonotope" `Slow test_complete_beats_zonotope;
          Alcotest.test_case "monotone" `Slow test_monotone;
        ] );
    ]
