test/test_zoo.mli:
