test/test_attack.ml: Alcotest Array Attack Deept Helpers Ir List Mat Nn Printf Rng Tensor Vecops
