test/test_autodiff.ml: Alcotest Array Hashtbl Helpers List Mat Nn Printf Rng Tensor
