test/test_certify.ml: Alcotest Array Deept Helpers Interval Ir List Mat Nn Rng Tensor Vecops
