test/test_zonotope.ml: Alcotest Array Deept Float Helpers Interval List Mat Printf QCheck Rng Tensor Vecops
