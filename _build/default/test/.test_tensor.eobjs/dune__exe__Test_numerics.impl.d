test/test_numerics.ml: Alcotest Array Deept Float Helpers Interval List Mat Nn Rng Tensor Vecops
