test/test_text.ml: Alcotest Array Helpers List Mat Nn Printf Rng String Tensor Text Vecops
