test/test_transformers.ml: Alcotest Array Deept Float Helpers Interval List Mat Rng Tensor Vecops
