test/test_numerics.mli:
