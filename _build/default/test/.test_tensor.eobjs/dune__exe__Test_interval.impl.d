test/test_interval.ml: Alcotest Array Float Helpers Ibp Imat Interval Ir Itv List Mat Nn Printf Rng Tensor
