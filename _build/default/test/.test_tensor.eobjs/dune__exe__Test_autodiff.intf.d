test/test_autodiff.mli:
