test/test_transformers.mli:
