test/test_propagate.ml: Alcotest Array Deept Helpers Interval Ir List Mat Nn Printf Rng Tensor Vecops
