test/test_propagate.mli:
