test/test_complete.ml: Alcotest Array Complete Deept Helpers List Mat Nn Printf Rng Tensor Vecops Vision
