test/test_text.mli:
