test/test_ir.ml: Alcotest Array Filename Format Helpers Ir List Mat Nn Out_channel Printf Result Rng String Sys Tensor
