test/test_linrelax.mli:
