test/helpers.ml: Alcotest Array Deept Float Interval Mat Nn QCheck QCheck_alcotest Rng Tensor
