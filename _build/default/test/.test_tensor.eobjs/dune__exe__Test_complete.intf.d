test/test_complete.mli:
