test/test_vision.mli:
