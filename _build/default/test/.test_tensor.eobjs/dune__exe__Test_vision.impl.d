test/test_vision.ml: Alcotest Array Filename Float Helpers List Mat Nn Printf Rng Sys Tensor Vecops Vision
