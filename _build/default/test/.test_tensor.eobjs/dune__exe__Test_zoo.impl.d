test/test_zoo.ml: Alcotest Array Helpers List Nn Printf Text Zoo
