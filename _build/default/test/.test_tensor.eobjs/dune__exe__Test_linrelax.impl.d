test/test_linrelax.ml: Alcotest Array Deept Float Helpers Ir Linrelax List Mat Nn Printf Rng Tensor Vecops
