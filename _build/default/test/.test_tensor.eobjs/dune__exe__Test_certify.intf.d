test/test_certify.mli:
