test/test_zonotope.mli:
