test/test_tensor.ml: Alcotest Array Float Helpers Mat QCheck Rng Tensor Vecops
