test/test_interval.mli:
