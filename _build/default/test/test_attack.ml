(* Adversarial attacks: differentiable IR execution matches the concrete
   interpreter, PGD respects the ball and really misclassifies, the
   certified/attacked bracket holds, and the greedy synonym attack agrees
   with enumeration. *)

open Tensor
module Lp = Deept.Lp

let test_forward_diff_matches () =
  List.iter
    (fun divide_std ->
      let p = Helpers.tiny_program ~layers:2 ~divide_std 71 in
      let rng = Rng.create 2 in
      for _ = 1 to 10 do
        let x = Mat.random_gaussian rng 3 (Ir.out_dim p 0) 0.8 in
        let tp = Nn.Autodiff.create () in
        let y = Nn.Autodiff.value (Nn.Forward_diff.run tp p (Nn.Autodiff.const tp x)) in
        Helpers.check_true "forward_diff = forward"
          (Mat.equal ~tol:1e-9 y (Nn.Forward.run p x))
      done)
    [ false; true ]

let test_forward_diff_vision_mode () =
  let rng = Rng.create 81 in
  let cfg =
    { Nn.Model.default_config with vocab_size = 1; max_len = 4; d_model = 8;
      d_hidden = 8; heads = 2; layers = 1; patch_dim = Some 6 }
  in
  let m = Nn.Model.create rng cfg in
  let p = Nn.Model.to_ir m in
  let x = Mat.random_gaussian rng 4 6 0.5 in
  let tp = Nn.Autodiff.create () in
  let y = Nn.Autodiff.value (Nn.Forward_diff.run tp p (Nn.Autodiff.const tp x)) in
  Helpers.check_true "vision forward_diff = forward"
    (Mat.equal ~tol:1e-9 y (Nn.Forward.run p x))

let test_input_gradient_finite_diff () =
  let p = Helpers.tiny_program ~layers:1 72 in
  let rng = Rng.create 3 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim p 0) 0.8 in
  let g = Nn.Forward_diff.input_gradient p x ~loss_class:0 in
  let loss m =
    let logits = Nn.Forward.logits p m in
    Vecops.logsumexp logits -. logits.(0)
  in
  let h = 1e-5 in
  for i = 0 to 2 do
    for j = 0 to 3 do
      let xp = Mat.mapi (fun a b v -> if a = i && b = j then v +. h else v) x in
      let xm = Mat.mapi (fun a b v -> if a = i && b = j then v -. h else v) x in
      let num = (loss xp -. loss xm) /. (2.0 *. h) in
      Helpers.check_float ~tol:1e-3
        (Printf.sprintf "input grad (%d,%d)" i j)
        num (Mat.get g i j)
    done
  done

let attack_setup seed =
  let p = Helpers.tiny_program ~layers:1 seed in
  let rng = Rng.create seed in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim p 0) 0.8 in
  let pred = Nn.Forward.predict p x in
  (p, rng, x, pred)

let test_pgd_result_valid () =
  List.iter
    (fun p_norm ->
      let program, rng, x, pred = attack_setup 73 in
      let radius = 3.0 in
      let r =
        Attack.pgd ~rng program ~p:p_norm x ~word:1 ~radius ~true_class:pred
      in
      match r.Attack.adversarial with
      | Some adv ->
          Helpers.check_true "misclassified"
            (Nn.Forward.predict program adv <> pred);
          let delta =
            Array.init (Mat.cols x) (fun j -> Mat.get adv 1 j -. Mat.get x 1 j)
          in
          Helpers.check_true "inside ball"
            (Lp.norm p_norm delta <= radius *. (1.0 +. 1e-9));
          (* unperturbed rows untouched *)
          for i = 0 to 2 do
            if i <> 1 then
              for j = 0 to Mat.cols x - 1 do
                Helpers.check_float "other rows intact" (Mat.get x i j)
                  (Mat.get adv i j)
              done
          done
      | None -> Helpers.check_true "queries spent" (r.Attack.queries > 0))
    [ Lp.L1; Lp.L2; Lp.Linf ]

let test_pgd_zero_radius_fails () =
  let program, rng, x, pred = attack_setup 74 in
  let r = Attack.pgd ~rng program ~p:Lp.L2 x ~word:1 ~radius:0.0 ~true_class:pred in
  Helpers.check_true "no attack at radius 0" (not r.Attack.found)

(* certified <= attacked: the fundamental bracket. *)
let test_bracket () =
  let program, rng, x, pred = attack_setup 75 in
  let certified =
    Deept.Certify.certified_radius Deept.Config.fast program ~p:Lp.L2 x ~word:1
      ~true_class:pred ~iters:8 ()
  in
  let attacked =
    Attack.attacked_radius ~iters:8 ~rng program ~p:Lp.L2 x ~word:1
      ~true_class:pred ()
  in
  Helpers.check_true
    (Printf.sprintf "certified %.4f <= attacked %.4f" certified attacked)
    (certified <= attacked +. 1e-9)

let test_l1_projection () =
  let rng = Rng.create 4 in
  for _ = 1 to 100 do
    let d = Array.init 6 (fun _ -> Rng.gaussian rng) in
    let proj = Attack.pgd in
    ignore proj;
    (* exercise the projection through a tiny pgd run instead: the ball
       membership above covers it; here check idempotence via norms *)
    let r = 0.5 in
    let inside = Deept.Lp.unit_ball_sample rng Lp.L1 6 in
    let inside = Vecops.scale r inside in
    Helpers.check_true "sample in l1 ball" (Vecops.l1 inside <= r +. 1e-9);
    ignore d
  done

let test_synonym_attack_agrees_with_enumeration () =
  let program, rng, x, pred = attack_setup 76 in
  let d = Mat.cols x in
  (* small perturbations: enumeration says whether any combo misclassifies *)
  let alts pos =
    List.init 2 (fun k ->
        Array.init d (fun j ->
            Mat.get x pos j +. (0.3 *. float_of_int (k + 1) *. Rng.gaussian rng)))
  in
  let subs = [ (0, alts 0); (1, alts 1); (2, alts 2) ] in
  let enum_ok, _ = Deept.Certify.enumerate_synonyms program x subs ~true_class:pred in
  let greedy = Attack.synonym_attack program x subs ~true_class:pred in
  (* greedy finding an attack implies enumeration finds one (soundness of
     the attack); greedy may miss attacks enumeration finds *)
  if greedy.Attack.found then begin
    Helpers.check_true "greedy attack implies enumeration attack" (not enum_ok);
    match greedy.Attack.adversarial with
    | Some adv ->
        Helpers.check_true "greedy adversarial misclassifies"
          (Nn.Forward.predict program adv <> pred)
    | None -> Alcotest.fail "found without adversarial"
  end

let test_synonym_attack_never_beats_certification () =
  (* if DeepT certifies the synonym box, the greedy attack must fail *)
  let program, rng, x, pred = attack_setup 77 in
  let d = Mat.cols x in
  let alts pos =
    List.init 3 (fun _ ->
        Array.init d (fun j -> Mat.get x pos j +. Rng.uniform rng (-0.005) 0.005))
  in
  let subs = [ (0, alts 0); (2, alts 2) ] in
  if
    Deept.Certify.certify_synonyms Deept.Config.fast program x subs
      ~true_class:pred
  then begin
    let greedy = Attack.synonym_attack program x subs ~true_class:pred in
    Helpers.check_true "no attack on certified box" (not greedy.Attack.found)
  end

let () =
  Alcotest.run "attack"
    [
      ( "forward_diff",
        [
          Alcotest.test_case "matches forward" `Quick test_forward_diff_matches;
          Alcotest.test_case "vision mode" `Quick test_forward_diff_vision_mode;
          Alcotest.test_case "input gradient" `Quick test_input_gradient_finite_diff;
        ] );
      ( "pgd",
        [
          Alcotest.test_case "valid results" `Quick test_pgd_result_valid;
          Alcotest.test_case "zero radius" `Quick test_pgd_zero_radius_fails;
          Alcotest.test_case "certified <= attacked" `Slow test_bracket;
          Alcotest.test_case "l1 geometry" `Quick test_l1_projection;
        ] );
      ( "synonyms",
        [
          Alcotest.test_case "agrees with enumeration" `Quick
            test_synonym_attack_agrees_with_enumeration;
          Alcotest.test_case "never beats certification" `Quick
            test_synonym_attack_never_beats_certification;
        ] );
    ]
