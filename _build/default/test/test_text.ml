(* Synthetic corpora and synonym dictionaries. *)

open Tensor

let corpus seed style = Text.Corpus.generate (Rng.create seed) style

let test_deterministic () =
  let a = corpus 5 Text.Corpus.Sst_like and b = corpus 5 Text.Corpus.Sst_like in
  Helpers.check_true "same corpora" (a.Text.Corpus.train = b.Text.Corpus.train)

let test_structure () =
  List.iter
    (fun style ->
      let c = corpus 6 style in
      List.iter
        (fun (toks, label) ->
          Helpers.check_true "starts with CLS" (toks.(0) = Text.Corpus.cls);
          Helpers.check_true "label binary" (label = 0 || label = 1);
          Helpers.check_true "within max_len"
            (Array.length toks <= c.Text.Corpus.max_len);
          Helpers.check_true "tokens in vocab"
            (Array.for_all
               (fun t -> t >= 0 && t < Array.length c.Text.Corpus.vocab)
               toks))
        (c.Text.Corpus.train @ c.Text.Corpus.test))
    [ Text.Corpus.Sst_like; Text.Corpus.Yelp_like ]

let test_balanced () =
  let c = corpus 7 Text.Corpus.Sst_like in
  let pos = List.length (List.filter (fun (_, l) -> l = 1) c.Text.Corpus.train) in
  let total = List.length c.Text.Corpus.train in
  let frac = float_of_int pos /. float_of_int total in
  Helpers.check_true
    (Printf.sprintf "balanced labels (%.2f)" frac)
    (frac > 0.4 && frac < 0.6)

(* The task must be learnable: the sentiment signal is present. *)
let test_signal_present () =
  let c = corpus 8 Text.Corpus.Sst_like in
  let polarity tok =
    if tok >= 2 && tok < 2 + c.Text.Corpus.n_positive then 1
    else if
      tok >= 2 + c.Text.Corpus.n_positive
      && tok < 2 + c.Text.Corpus.n_positive + c.Text.Corpus.n_negative
    then -1
    else 0
  in
  let correct = ref 0 and total = ref 0 in
  List.iter
    (fun (toks, label) ->
      let score = Array.fold_left (fun acc t -> acc + polarity t) 0 toks in
      incr total;
      if (score > 0 && label = 1) || (score < 0 && label = 0) then incr correct)
    c.Text.Corpus.train;
  let frac = float_of_int !correct /. float_of_int !total in
  Helpers.check_true
    (Printf.sprintf "word-count heuristic accuracy %.2f" frac)
    (frac > 0.7)

let test_sentence_rendering () =
  let c = corpus 9 Text.Corpus.Sst_like in
  let toks, _ = List.hd c.Text.Corpus.train in
  let s = Text.Corpus.sentence c toks in
  Helpers.check_true "rendering non-empty" (String.length s > 0)

let test_synonym_offsets () =
  let c = corpus 10 Text.Corpus.Sst_like in
  let syn = Text.Synonyms.generate (Rng.create 11) c ~dim:8 in
  let r = Text.Synonyms.radius syn in
  let found = ref 0 in
  for tok = 0 to Array.length c.Text.Corpus.vocab - 1 do
    let offs = Text.Synonyms.offsets syn tok in
    if offs <> [] then begin
      incr found;
      Helpers.check_true "only sentiment words have synonyms"
        (Text.Corpus.is_sentiment_word c tok);
      List.iter
        (fun off ->
          Helpers.check_true "offset within radius" (Vecops.linf off <= r))
        offs
    end
  done;
  Helpers.check_true "some words have synonyms" (!found > 0)

let test_substitutions () =
  let c = corpus 12 Text.Corpus.Sst_like in
  let model =
    Nn.Model.create (Rng.create 13)
      { Nn.Model.default_config with vocab_size = Array.length c.Text.Corpus.vocab }
  in
  let d = (Nn.Model.config model).Nn.Model.d_model in
  let syn = Text.Synonyms.generate (Rng.create 14) c ~dim:d in
  (* find a sentence with at least one substitutable word *)
  let toks, _ =
    List.find
      (fun (toks, _) ->
        Array.exists (fun t -> Text.Synonyms.offsets syn t <> []) toks)
      c.Text.Corpus.train
  in
  let subs = Text.Synonyms.substitutions syn model toks in
  Helpers.check_true "has substitutions" (subs <> []);
  let embedded = Nn.Model.embed_tokens model toks in
  List.iter
    (fun (pos, rows) ->
      List.iter
        (fun (row : float array) ->
          Helpers.check_true "row dim" (Array.length row = d);
          (* the alternative stays within the synonym radius of the slot *)
          let diff =
            Array.mapi (fun j v -> v -. Mat.get embedded pos j) row
          in
          Helpers.check_true "alternative near original"
            (Vecops.linf diff <= Text.Synonyms.radius syn +. 1e-12))
        rows)
    subs;
  (* combination count matches the substitution structure *)
  let expected =
    List.fold_left (fun acc (_, rows) -> acc * (1 + List.length rows)) 1 subs
  in
  Helpers.check_true "combination count"
    (Text.Synonyms.count_combinations syn toks = expected)

let test_tokenize () =
  let c = corpus 15 Text.Corpus.Sst_like in
  let toks = Text.Corpus.tokenize c "movie0 great0 zzz-unknown" in
  Helpers.check_true "starts with CLS" (toks.(0) = Text.Corpus.cls);
  Helpers.check_true "known word" (Text.Corpus.word c toks.(1) = "movie0");
  Helpers.check_true "sentiment word" (Text.Corpus.is_sentiment_word c toks.(2));
  Helpers.check_true "unknown -> UNK" (Text.Corpus.word c toks.(3) = "[UNK]");
  (* roundtrip through rendering *)
  let again = Text.Corpus.tokenize c (Text.Corpus.sentence c toks) in
  Helpers.check_true "tokenize . sentence = id" (again = toks);
  (* truncation *)
  let long = String.concat " " (List.init 40 (fun _ -> "movie0")) in
  Helpers.check_true "truncated to max_len"
    (Array.length (Text.Corpus.tokenize c long) <= c.Text.Corpus.max_len)

let () =
  Alcotest.run "text"
    [
      ( "corpus",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "balanced" `Quick test_balanced;
          Alcotest.test_case "signal present" `Quick test_signal_present;
          Alcotest.test_case "rendering" `Quick test_sentence_rendering;
          Alcotest.test_case "tokenize" `Quick test_tokenize;
        ] );
      ( "synonyms",
        [
          Alcotest.test_case "offsets" `Quick test_synonym_offsets;
          Alcotest.test_case "substitutions" `Quick test_substitutions;
        ] );
    ]
