(* Command-line robustness certification front-end.

     certify show   --model sst_3
     certify t1     --model sst_3 --index 0 --word 2 --norm 2 --radius 0.05
     certify radius --model sst_3 --index 0 --word 2 --norm 2
     certify t2     --model robust_3 --index 0

   Models come from the zoo (trained on demand into data/). *)

open Cmdliner
open Tensor

type verifier = Deept_fast | Deept_precise | Crown_baf | Crown_backward

let verifier_conv =
  let parse = function
    | "deept-fast" -> Ok Deept_fast
    | "deept-precise" -> Ok Deept_precise
    | "crown-baf" -> Ok Crown_baf
    | "crown-backward" -> Ok Crown_backward
    | s -> Error (`Msg ("unknown verifier " ^ s))
  in
  let print ppf v =
    Format.pp_print_string ppf
      (match v with
      | Deept_fast -> "deept-fast"
      | Deept_precise -> "deept-precise"
      | Crown_baf -> "crown-baf"
      | Crown_backward -> "crown-backward")
  in
  Arg.conv (parse, print)

let norm_conv =
  let parse = function
    | "1" -> Ok Deept.Lp.L1
    | "2" -> Ok Deept.Lp.L2
    | "inf" -> Ok Deept.Lp.Linf
    | s -> Error (`Msg ("unknown norm " ^ s ^ " (use 1, 2 or inf)"))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Deept.Lp.to_string p))

let model_arg =
  let doc = "Zoo model name (e.g. sst_3, yelp_12, robust_3, vit_1)." in
  Arg.(required & opt (some string) None & info [ "model"; "m" ] ~doc)

let index_arg =
  let doc = "Index of the test sentence." in
  Arg.(value & opt int 0 & info [ "index"; "i" ] ~doc)

let sentence_arg =
  let doc =
    "Certify this sentence instead of a test-set one (words outside the \
     corpus vocabulary become [UNK]); the concrete prediction is used as \
     the class to certify."
  in
  Arg.(value & opt (some string) None & info [ "sentence"; "s" ] ~doc)

let word_arg =
  let doc = "Perturbed word position (threat model T1)." in
  Arg.(value & opt int 1 & info [ "word"; "w" ] ~doc)

let norm_arg =
  let doc = "Perturbation norm: 1, 2 or inf." in
  Arg.(value & opt norm_conv Deept.Lp.L2 & info [ "norm"; "p" ] ~doc)

let radius_arg =
  let doc = "Perturbation radius." in
  Arg.(value & opt float 0.01 & info [ "radius"; "r" ] ~doc)

let verifier_arg =
  let doc = "Verifier: deept-fast, deept-precise, crown-baf, crown-backward." in
  Arg.(value & opt verifier_conv Deept_fast & info [ "verifier"; "v" ] ~doc)

let data_arg =
  let doc = "Model directory." in
  Arg.(value & opt string "data" & info [ "data" ] ~doc)

let profile_arg =
  let doc =
    "Collect a per-op cost profile: prints a table (calls, wall time, \
     domain size, bound width per op, then per-kind totals) and writes \
     PROFILE_<model>.json in the working directory. One collector absorbs \
     every propagation of the run, so a radius search profiles the whole \
     binary search."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let domains_arg =
  let doc =
    "OCaml domains sharding the zonotope kernels inside each propagation. \
     Deterministic: verdicts and radii are bit-identical to --domains 1. \
     DeepT verifiers only (CROWN baselines ignore it)."
  in
  Arg.(value & opt int 1 & info [ "domains"; "d" ] ~doc)

(* Domain parallelism composes multiplicatively with the forked worker
   pool of `batch` and with the forked probe processes of the radius
   search: each of the [jobs] processes runs [probes] concurrent probes,
   and every probe spawns its own [domains]-sized pool. Warn when that
   oversubscribes the machine — it only slows things down. *)
let apply_domains ~jobs ?(probes = 1) domains cfg =
  let avail = Domain.recommended_domain_count () in
  if jobs * probes * domains > avail then
    Printf.eprintf
      "certify: warning: %d job(s) x %d probe(s) x %d domain(s) \
       oversubscribes the %d recommended domain(s) on this machine\n%!"
      jobs probes domains avail;
  Deept.Config.with_domains domains cfg

let no_fuse_arg =
  let doc =
    "Disable the affine-fusion pre-pass (chains of affine ops composed \
     into single linear nodes at program load). Fusion preserves \
     certification decisions and radii; this flag pins the exact \
     unfused op graph — useful when op indices must line up with an \
     external trace. --fault disables fusion automatically (fault sites \
     are addressed by unfused op index)."
  in
  Arg.(value & flag & info [ "no-fuse" ] ~doc)

let probes_arg =
  let doc =
    "Concurrent radius-search probes per refinement round. 1 (the \
     default) is the sequential bisection, bit-identical to prior \
     releases; N > 1 forks N probe processes per round and splits the \
     bracket N+1 ways, reaching bisection precision in exponentially \
     fewer rounds. Radii from N > 1 may differ from the sequential ones \
     only by probing different grids — every reported radius still comes \
     from a propagation that certified."
  in
  Arg.(value & opt int 1 & info [ "probes" ] ~doc)

let refine_arg =
  let doc =
    "Branch-and-bound refinement (DeepT verifiers only): when the \
     requested configuration fails cleanly on precision, split the noise \
     symbols that dominate the losing logit margin and re-certify the \
     halves before giving up. Sound: certified only if every branch \
     certifies."
  in
  Arg.(value & flag & info [ "refine" ] ~doc)

let setup data = Zoo.data_dir := data

(* --profile wiring: [wrap] installs the collector's sink on a DeepT
   config, [trace] is the same sink for the CROWN verifiers, [report]
   prints the table and writes PROFILE_<model>.json. All three are
   no-ops when the flag is off. *)
let profiler ~model enabled =
  if not enabled then ((fun cfg -> cfg), None, fun () -> ())
  else begin
    let prof = Deept.Profile.create () in
    let sink = Deept.Profile.sink prof in
    ( Deept.Config.with_trace (Some sink),
      Some sink,
      fun () ->
        Format.printf "%a@." Deept.Profile.pp prof;
        let path = "PROFILE_" ^ model ^ ".json" in
        Deept.Profile.save_json ~model path prof;
        Printf.printf "profile written to %s\n" path )
  end

let load name =
  let entry = Zoo.entry name in
  let model = Zoo.load_or_train ~log:(fun s -> Printf.eprintf "%s\n%!" s) name in
  (entry, model)

(* Either the indexed test sentence (with its gold label) or a user
   sentence (certifying the model's own prediction). *)
let pick_input entry model index sentence =
  let c = Zoo.corpus_of entry.Zoo.corpus in
  match sentence with
  | None -> (c, List.nth c.Text.Corpus.test index)
  | Some text ->
      let toks = Text.Corpus.tokenize c text in
      if Array.length toks < 2 then failwith "sentence is empty after tokenization";
      let x = Nn.Model.embed_tokens model toks in
      let program = Nn.Model.to_ir model in
      (c, (toks, Nn.Forward.predict program x))

(* --- show ----------------------------------------------------------- *)

let show data name =
  setup data;
  let entry, model = load name in
  let program = Nn.Model.to_ir model in
  Format.printf "%a@." Ir.pp program;
  Format.printf "test accuracy: %.3f@." (Zoo.test_accuracy model entry)

let show_cmd =
  Cmd.v
    (Cmd.info "show" ~doc:"Print a model's architecture and accuracy.")
    Term.(const show $ data_arg $ model_arg)

(* --- t1 -------------------------------------------------------------- *)

let certify_t1 data name index sentence word p radius verifier refine domains
    profile no_fuse =
  if refine && (verifier = Crown_baf || verifier = Crown_backward) then begin
    prerr_endline
      "certify: --refine is a DeepT engine feature (use deept-fast or \
       deept-precise)";
    exit 1
  end;
  setup data;
  let entry, model = load name in
  let c, (toks, label) = pick_input entry model index sentence in
  let program = Nn.Model.to_ir model in
  (* The DeepT verifiers run on the fused graph (a no-op on the zoo
     architectures); prediction and the CROWN baselines keep the
     as-lowered one. *)
  let vprogram = if no_fuse then program else Fuse.fuse_program program in
  let x = Nn.Model.embed_tokens model toks in
  let wrap, trace, report = profiler ~model:name profile in
  Printf.printf "sentence: %s\nlabel: %s, perturbing word %d (%s) with l%s radius %g\n"
    (Text.Corpus.sentence c toks)
    (if label = 1 then "positive" else "negative")
    word
    (Text.Corpus.word c toks.(word))
    (Deept.Lp.to_string p |> fun s -> String.sub s 1 (String.length s - 1))
    radius;
  let pred = Nn.Forward.predict program x in
  if pred <> label then Printf.printf "misclassified even without perturbation\n"
  else begin
    (* With --refine the query goes through the engine so the refine
       rung (and the ladder line showing what each attempt returned) is
       available; without it, the direct single-propagation path is
       unchanged. *)
    let deept base =
      let cfg = wrap (apply_domains ~jobs:1 domains base) in
      if not refine then
        Deept.Certify.certify cfg vprogram
          (Deept.Region.lp_ball ~p x ~word ~radius)
          ~true_class:label
      else begin
        let cfg =
          Deept.Config.with_refine (Some Deept.Config.default_refine) cfg
        in
        let o =
          Deept.Engine.certify cfg vprogram
            (Deept.Region.lp_ball ~p x ~word ~radius)
            ~true_class:label
        in
        Format.printf "%a@." Deept.Engine.pp_outcome o;
        o.Deept.Engine.verdict = Deept.Verdict.Certified
      end
    in
    let ok =
      match verifier with
      | Deept_fast -> deept Deept.Config.fast
      | Deept_precise -> deept Deept.Config.precise
      | Crown_baf | Crown_backward ->
          let g = Linrelax.Verify.graph_of program ~seq_len:(Mat.rows x) in
          let v =
            if verifier = Crown_baf then Linrelax.Verify.Baf
            else Linrelax.Verify.Backward
          in
          Linrelax.Verify.certify ~verifier:v ?trace g
            (Linrelax.Verify.region_word_ball ~p x ~word ~radius)
            ~true_class:label
    in
    Printf.printf "%s\n" (if ok then "CERTIFIED" else "not certified");
    report ()
  end

let t1_cmd =
  Cmd.v
    (Cmd.info "t1" ~doc:"Certify an lp-ball perturbation of one word.")
    Term.(
      const certify_t1 $ data_arg $ model_arg $ index_arg $ sentence_arg
      $ word_arg $ norm_arg $ radius_arg $ verifier_arg $ refine_arg
      $ domains_arg $ profile_arg $ no_fuse_arg)

(* --- radius ----------------------------------------------------------- *)

let radius_search data name index sentence word p verifier refine domains
    probes profile no_fuse =
  if refine && (verifier = Crown_baf || verifier = Crown_backward) then begin
    prerr_endline
      "certify: --refine is a DeepT engine feature (use deept-fast or \
       deept-precise)";
    exit 1
  end;
  setup data;
  let entry, model = load name in
  let c, (toks, label) = pick_input entry model index sentence in
  let program = Nn.Model.to_ir model in
  let vprogram = if no_fuse then program else Fuse.fuse_program program in
  let x = Nn.Model.embed_tokens model toks in
  let wrap, trace, report = profiler ~model:name profile in
  let pred = Nn.Forward.predict program x in
  Printf.printf "sentence: %s\n" (Text.Corpus.sentence c toks);
  if pred <> label then Printf.printf "misclassified even without perturbation\n"
  else begin
    let search = Deept.Config.search ~probes () in
    let deept_cfg base =
      let cfg =
        Deept.Config.with_search search
          (wrap (apply_domains ~jobs:1 ~probes domains base))
      in
      if refine then
        Deept.Config.with_refine (Some Deept.Config.default_refine) cfg
      else cfg
    in
    (* Multi-probe and refined searches go through the reporting API so
       the probe budget, final bracket and refined radius can be shown;
       the headline line is the same either way. *)
    let deept base =
      if probes <= 1 && not refine then
        ( Deept.Certify.certified_radius (deept_cfg base) vprogram ~p x ~word
            ~true_class:label (),
          None )
      else
        let r =
          Deept.Certify.certified_radius_v (deept_cfg base) vprogram ~p x ~word
            ~true_class:label ()
        in
        (r.Deept.Certify.radius, Some r)
    in
    let r, rep =
      match verifier with
      | Deept_fast -> deept Deept.Config.fast
      | Deept_precise -> deept Deept.Config.precise
      | Crown_baf ->
          ( Linrelax.Verify.certified_radius ~verifier:Linrelax.Verify.Baf
              ?trace ~search program ~p x ~word ~true_class:label (),
            None )
      | Crown_backward ->
          ( Linrelax.Verify.certified_radius ~verifier:Linrelax.Verify.Backward
              ?trace ~search program ~p x ~word ~true_class:label (),
            None )
    in
    Printf.printf "certified radius: %.6g\n" r;
    (match rep with
    | Some rep when probes > 1 ->
        let good, bad = rep.Deept.Certify.bracket in
        Printf.printf
          "search: %d probes/round, %d bracket + %d bisect probes in %d \
           round(s), final bracket [%.6g, %s)\n"
          probes rep.Deept.Certify.bracket_probes
          rep.Deept.Certify.bisect_probes rep.Deept.Certify.rounds good
          (if bad = infinity then "inf" else Printf.sprintf "%.6g" bad)
    | _ -> ());
    (match rep with
    | Some { Deept.Certify.refined_radius = Some rr; _ } ->
        Printf.printf "refined radius: %.6g%s\n" rr
          (if rr > r && r > 0.0 then
             Printf.sprintf "  (+%.2f%% over the plain search)"
               ((rr /. r -. 1.0) *. 100.0)
           else if rr > r then "  (recovered from 0)"
           else "  (refinement could not move the failing edge)")
    | Some { Deept.Certify.refined_radius = None; _ } when refine ->
        Printf.printf
          "refined radius: n/a (the plain bracket never closed)\n"
    | _ -> ());
    report ()
  end

let radius_cmd =
  Cmd.v
    (Cmd.info "radius" ~doc:"Bracket-search the maximal certified radius.")
    Term.(
      const radius_search $ data_arg $ model_arg $ index_arg $ sentence_arg
      $ word_arg $ norm_arg $ verifier_arg $ refine_arg $ domains_arg
      $ probes_arg $ profile_arg $ no_fuse_arg)

(* --- t2 --------------------------------------------------------------- *)

let certify_t2 data name index sentence =
  setup data;
  let entry, model = load name in
  let c, (toks, label) = pick_input entry model index sentence in
  let program = Nn.Model.to_ir model in
  let x = Nn.Model.embed_tokens model toks in
  let syn = Zoo.synonyms_for model c in
  let subs = Text.Synonyms.substitutions syn model toks in
  Printf.printf "sentence: %s\n" (Text.Corpus.sentence c toks);
  Array.iteri
    (fun pos tok ->
      match Text.Synonyms.names syn c tok with
      | [] -> ()
      | names ->
          Printf.printf "  %-12s -> %s\n" (Text.Corpus.word c tok)
            (String.concat ", " names);
          ignore pos)
    toks;
  let combos = Deept.Certify.count_combinations subs in
  Printf.printf "synonym combinations: %d\n" combos;
  let pred = Nn.Forward.predict program x in
  if pred <> label then Printf.printf "misclassified even without perturbation\n"
  else begin
    let ok = Deept.Certify.certify_synonyms Deept.Config.fast program x subs ~true_class:label in
    Printf.printf "DeepT-Fast: %s\n" (if ok then "CERTIFIED" else "not certified")
  end

let t2_cmd =
  Cmd.v
    (Cmd.info "t2" ~doc:"Certify a synonym-substitution attack on a sentence.")
    Term.(const certify_t2 $ data_arg $ model_arg $ index_arg $ sentence_arg)

(* --- batch ------------------------------------------------------------ *)

(* Hardened batch certification on the supervised worker pool: every
   sentence runs as an independent job on a forked worker, so a sentence
   that crashes, stalls or eats all memory cannot take down the run —
   cooperative budgets and the degradation ladder turn in-propagation
   faults into typed verdicts, while the supervisor's hard deadline
   (SIGTERM, then SIGKILL after --grace) and memory guard contain
   everything the worker cannot catch, reported as
   unknown(worker-killed) / unknown(worker-crashed). Completed jobs are
   appended to a crash-safe JSONL journal; --resume continues a killed
   batch, certifying only the missing sentences. *)

let fault_conv =
  let parse s =
    match String.rindex_opt s '@' with
    | None -> Error (`Msg "fault spec must look like nan@OP (see --help)")
    | Some at -> (
        let action = String.sub s 0 at in
        let op = String.sub s (at + 1) (String.length s - at - 1) in
        match int_of_string_opt op with
        | None -> Error (`Msg ("fault spec: bad op index " ^ op))
        | Some op when op < 0 -> Error (`Msg "fault spec: op index must be >= 0")
        | Some op -> (
            match String.split_on_char ':' action with
            | [ "nan" ] -> Ok (op, Deept.Config.Inject_nan)
            | [ "inf" ] -> Ok (op, Deept.Config.Inject_inf)
            | [ "unbounded" ] -> Ok (op, Deept.Config.Raise_unbounded)
            | [ "stall"; secs ] -> (
                match float_of_string_opt secs with
                | Some s when s >= 0.0 -> Ok (op, Deept.Config.Stall s)
                | _ -> Error (`Msg ("fault spec: bad stall duration " ^ secs)))
            | _ ->
                Error
                  (`Msg
                     ("unknown fault action " ^ action
                    ^ " (use nan, inf, unbounded or stall:SECS)"))))
  in
  let print ppf (op, action) =
    Format.fprintf ppf "%s@%d" (Deept.Config.fault_action_name action) op
  in
  Arg.conv (parse, print)

let count_arg =
  let doc = "Number of test sentences to certify." in
  Arg.(value & opt int 4 & info [ "count"; "n" ] ~doc)

let deadline_arg =
  let doc = "Wall-clock deadline per propagation attempt, in seconds." in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~doc)

let budget_arg =
  let doc = "Maximum live noise symbols per propagation attempt." in
  Arg.(value & opt (some int) None & info [ "budget" ] ~doc)

let fault_arg =
  let doc =
    "Deterministic fault injection: nan@OP, inf@OP, unbounded@OP or \
     stall:SECS@OP poisons (or stalls) the output of op OP in every \
     sentence's propagation."
  in
  Arg.(value & opt (some fault_conv) None & info [ "fault" ] ~doc)

let fault_rungs_arg =
  let doc =
    "How many ladder attempts the injected fault stays active for (0 or \
     less: all of them)."
  in
  Arg.(value & opt int 1 & info [ "fault-rungs" ] ~doc)

let jobs_arg =
  let doc = "Worker processes in the certification pool." in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~doc)

let journal_arg =
  let doc =
    "Append every completed sentence to this crash-safe JSONL journal \
     (starts fresh; use --resume to continue one)."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~doc)

let resume_arg =
  let doc =
    "Resume a killed batch from its journal: already-journaled sentences \
     are skipped, new verdicts are appended to the same file."
  in
  Arg.(value & opt (some string) None & info [ "resume" ] ~doc)

let max_retries_arg =
  let doc = "Re-runs of a job whose worker crashed (deadline kills are not retried)." in
  Arg.(value & opt int 1 & info [ "max-retries" ] ~doc)

let grace_arg =
  let doc = "Seconds between SIGTERM and SIGKILL when a worker overruns --hard-deadline." in
  Arg.(value & opt float 1.0 & info [ "grace" ] ~doc)

let hard_deadline_arg =
  let doc =
    "Per-sentence wall-clock deadline enforced by the supervisor from \
     outside the worker (contrast --deadline, the cooperative per-attempt \
     budget inside the propagation)."
  in
  Arg.(value & opt (some float) None & info [ "hard-deadline" ] ~doc)

let mem_limit_arg =
  let doc = "Per-worker major-heap cap in MB." in
  Arg.(value & opt (some int) None & info [ "mem-limit" ] ~doc)

let fault_sentence_arg =
  let doc =
    "Apply --fault only to this sentence index (default: every sentence) — \
     e.g. a stall beyond --hard-deadline on one sentence drills the \
     kill-containment path while the rest of the batch completes."
  in
  Arg.(value & opt (some int) None & info [ "fault-sentence" ] ~doc)

let crash_sentence_arg =
  let doc =
    "Hard-crash drill: the worker process running this sentence exits \
     uncleanly mid-job (simulating a segfault/OOM-class death), which must \
     surface as unknown(worker-crashed) after --max-retries."
  in
  Arg.(value & opt (some int) None & info [ "crash-sentence" ] ~doc)

let batch data name count word p radius verifier refine deadline budget fault
    fault_rungs jobs journal_path resume_path max_retries grace hard_deadline
    mem_limit fault_sentence crash_sentence domains probes no_fuse =
  setup data;
  let entry, model = load name in
  let c = Zoo.corpus_of entry.Zoo.corpus in
  let program = Nn.Model.to_ir model in
  let base =
    match verifier with
    | Deept_fast -> Deept.Config.fast
    | Deept_precise -> Deept.Config.precise
    | Crown_baf | Crown_backward ->
        prerr_endline
          "certify: batch supports only deept-fast and deept-precise (the \
           degradation ladder is a DeepT engine feature)";
        exit 1
  in
  let base =
    if refine then
      Deept.Config.with_refine (Some Deept.Config.default_refine) base
    else base
  in
  let cfg =
    let cfg =
      Deept.Config.with_search
        (Deept.Config.search ~probes ())
        (apply_domains ~jobs ~probes domains
           (Deept.Config.with_budget ?deadline ?max_eps:budget base))
    in
    match fault with
    | None -> cfg
    | Some (op, action) ->
        let persist = if fault_rungs <= 0 then max_int else fault_rungs in
        { cfg with Deept.Config.fault = Some (Deept.Config.fault ~persist op action) }
  in
  (* Propagate.fuse_for keeps the graph unfused whenever cfg arms fault
     injection (fault sites are addressed by unfused op index); that also
     covers --fault-sentence, which narrows the same armed cfg. *)
  let program =
    if no_fuse then program else Deept.Propagate.fuse_for cfg program
  in
  let sentences =
    Array.of_list (List.filteri (fun i _ -> i < count) c.Text.Corpus.test)
  in
  let total = Array.length sentences in
  if total < count then
    Printf.printf "note: test set has only %d sentences\n" total;
  let journal =
    match (resume_path, journal_path) with
    | Some p, _ -> Some (Deept.Journal.resume p)
    | None, Some p -> Some (Deept.Journal.create p)
    | None, None -> None
  in
  let journaled id =
    match journal with Some j -> Deept.Journal.journaled j id | None -> false
  in
  let todo = ref [] in
  Array.iteri
    (fun i s -> if not (journaled i) then todo := (i, s) :: !todo)
    sentences;
  let todo = List.rev !todo in
  if List.length todo < total then
    Printf.printf "resume: %d sentence(s) already journaled, certifying %d\n%!"
      (total - List.length todo)
      (List.length todo);
  let pool =
    Deept.Config.pool ~workers:jobs ?hard_deadline_s:hard_deadline
      ~grace_s:grace ?mem_limit_mb:mem_limit ~max_retries ()
  in
  (* The job body, run on a forked worker: in-propagation faults become
     typed verdicts via the ladder; an unforeseen exception is contained
     here so only genuine process deaths (kill, crash, OOM) burn retries
     and surface as worker-* verdicts. *)
  let worker i (toks, label) =
    let word = max 0 (min word (Array.length toks - 1)) in
    if crash_sentence = Some i then exit 86;
    let cfg =
      match fault_sentence with
      | Some k when k <> i -> { cfg with Deept.Config.fault = None }
      | _ -> cfg
    in
    try
      let x = Nn.Model.embed_tokens model toks in
      let region = Deept.Region.lp_ball ~p x ~word ~radius in
      Deept.Engine.certify cfg program region ~true_class:label
    with exn ->
      let a =
        {
          Deept.Engine.rung_name = "crash:" ^ Printexc.to_string exn;
          verdict = Deept.Verdict.Unknown Deept.Verdict.Numerical_fault;
          direction = Deept.Engine.Down;
        }
      in
      {
        Deept.Engine.verdict = a.Deept.Engine.verdict;
        rung_name = a.Deept.Engine.rung_name;
        attempts = [ a ];
      }
  in
  let entry_of (r : Deept.Engine.outcome Deept.Supervisor.job_result) =
    match r.Deept.Supervisor.outcome with
    | Ok o ->
        {
          Deept.Journal.job = r.Deept.Supervisor.job;
          verdict = o.Deept.Engine.verdict;
          rung = o.Deept.Engine.rung_name;
          attempts = List.length o.Deept.Engine.attempts;
          retries = r.Deept.Supervisor.retries;
          wall_s = r.Deept.Supervisor.wall_s;
          detail = "";
        }
    | Error f ->
        {
          Deept.Journal.job = r.Deept.Supervisor.job;
          verdict = Deept.Verdict.Unknown (Deept.Supervisor.failure_reason f);
          rung = "worker";
          attempts = 0;
          retries = r.Deept.Supervisor.retries;
          wall_s = r.Deept.Supervisor.wall_s;
          detail = Deept.Supervisor.failure_detail f;
        }
  in
  let fresh = ref [] in
  (* Histogram of every ladder rung attempted, with its direction —
     built from outcome.attempts of this run's fresh results (resumed
     journal rows only record the final rung, not the walk). *)
  let attempt_hist = ref [] in
  let note_attempts (r : Deept.Engine.outcome Deept.Supervisor.job_result) =
    match r.Deept.Supervisor.outcome with
    | Error _ -> ()
    | Ok o ->
        List.iter
          (fun (a : Deept.Engine.attempt) ->
            let k =
              match a.Deept.Engine.direction with
              | Deept.Engine.Down -> a.Deept.Engine.rung_name
              | Deept.Engine.Up -> a.Deept.Engine.rung_name ^ " (up)"
            in
            let n = try List.assoc k !attempt_hist with Not_found -> 0 in
            attempt_hist := (k, n + 1) :: List.remove_assoc k !attempt_hist)
          o.Deept.Engine.attempts
  in
  ignore
    (Deept.Supervisor.run ~pool
       ~on_result:(fun r ->
         let e = entry_of r in
         fresh := e :: !fresh;
         note_attempts r;
         (match journal with Some j -> Deept.Journal.append j e | None -> ());
         let i = e.Deept.Journal.job in
         let toks, _ = sentences.(i) in
         Printf.printf "[%2d] %-40s %s@%s%s  (%.2fs)\n%!" i
           (let s = Text.Corpus.sentence c toks in
            if String.length s <= 40 then s else String.sub s 0 37 ^ "...")
           (Deept.Verdict.to_string e.Deept.Journal.verdict)
           e.Deept.Journal.rung
           (if e.Deept.Journal.detail = "" then ""
            else " [" ^ e.Deept.Journal.detail ^ "]")
           e.Deept.Journal.wall_s)
       ~worker todo);
  (* The full batch: journaled entries (resumed + fresh) or, without a
     journal, just this run's results. *)
  let rows =
    match journal with
    | Some j -> Deept.Journal.entries j
    | None -> List.rev !fresh
  in
  (* summary: verdicts by reason, then rescues by ladder rung — rows
     sorted by name so journal/summary diffs are stable across runs *)
  let tally f =
    List.fold_left
      (fun acc e ->
        let k = f e in
        let n = try List.assoc k acc with Not_found -> 0 in
        (k, n + 1) :: List.remove_assoc k acc)
      [] rows
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Printf.printf "\n== summary (%d sentences) ==\n" (List.length rows);
  List.iter
    (fun (v, n) -> Printf.printf "  %-28s %d\n" v n)
    (tally (fun (e : Deept.Journal.entry) ->
         Deept.Verdict.to_string e.Deept.Journal.verdict));
  Printf.printf "by rung:\n";
  List.iter
    (fun (r, n) -> Printf.printf "  %-28s %d\n" r n)
    (tally (fun (e : Deept.Journal.entry) -> e.Deept.Journal.rung));
  if !attempt_hist <> [] then begin
    Printf.printf "attempts by rung (this run):\n";
    List.iter
      (fun (r, n) -> Printf.printf "  %-28s %d\n" r n)
      (List.sort (fun (a, _) (b, _) -> String.compare a b) !attempt_hist)
  end;
  let count_verdicts pred =
    List.length
      (List.filter (fun (e : Deept.Journal.entry) -> pred e.Deept.Journal.verdict) rows)
  in
  let dead =
    count_verdicts (function
      | Deept.Verdict.Unknown
          (Deept.Verdict.Worker_killed | Deept.Verdict.Worker_crashed) ->
          true
      | _ -> false)
  in
  let faults =
    count_verdicts (fun v ->
        v = Deept.Verdict.Unknown Deept.Verdict.Numerical_fault)
  in
  if dead > 0 then begin
    Printf.printf "%d sentence(s) lost their worker (killed or crashed)\n" dead;
    exit 3
  end;
  if faults > 0 then begin
    Printf.printf "%d sentence(s) ended in a numerical fault\n" faults;
    exit 2
  end

let batch_cmd =
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Certify a batch of test sentences on a supervised pool of forked \
          workers, with budgets, fault containment, the \
          graceful-degradation ladder, hard per-sentence deadlines and a \
          crash-safe resume journal. Exit status: 3 if any worker died \
          (killed or crashed), else 2 if any sentence ended in a \
          numerical fault, else 0.")
    Term.(
      const batch $ data_arg $ model_arg $ count_arg $ word_arg $ norm_arg
      $ radius_arg $ verifier_arg $ refine_arg $ deadline_arg $ budget_arg
      $ fault_arg
      $ fault_rungs_arg $ jobs_arg $ journal_arg $ resume_arg
      $ max_retries_arg $ grace_arg $ hard_deadline_arg $ mem_limit_arg
      $ fault_sentence_arg $ crash_sentence_arg $ domains_arg $ probes_arg
      $ no_fuse_arg)

let () =
  let info = Cmd.info "certify" ~doc:"DeepT robustness certification CLI." in
  exit (Cmd.eval (Cmd.group info [ show_cmd; t1_cmd; radius_cmd; t2_cmd; batch_cmd ]))
