(* certifyd — the long-lived certification daemon and its client CLI.

     certifyd serve    --socket /tmp/certifyd.sock --model sst_3 --jobs 2 \
                       --journal certifyd.jsonl
     certifyd request  --socket /tmp/certifyd.sock --model sst_3 --count 8 \
                       --norm 2 --radius 0.02
     certifyd stats    --socket /tmp/certifyd.sock
     certifyd shutdown --socket /tmp/certifyd.sock
     certifyd summary  --journal certifyd.jsonl

   `serve` loads the requested zoo models once, pre-forks warm workers
   and serves line-delimited JSON certification jobs with admission
   control, per-model circuit breakers and a crash-safe journal;
   `--resume` recovers a killed daemon's journal and intake file,
   re-running exactly the accepted-but-unfinished jobs. *)

open Cmdliner

let socket_arg =
  let doc = "Unix-domain socket path." in
  Arg.(value & opt string "/tmp/certifyd.sock" & info [ "socket"; "s" ] ~doc)

let data_arg =
  let doc = "Model directory." in
  Arg.(value & opt string "data" & info [ "data" ] ~doc)

(* --- serve ----------------------------------------------------------- *)

let models_arg =
  let doc = "Zoo model(s) to load and serve (repeatable)." in
  Arg.(value & opt_all string [ "sst_3" ] & info [ "model"; "m" ] ~doc)

let jobs_arg =
  let doc = "Pre-forked worker processes." in
  Arg.(value & opt int 2 & info [ "jobs"; "j" ] ~doc)

let queue_cap_arg =
  let doc =
    "Waiting jobs admitted before the daemon starts shedding with \
     `overloaded' responses."
  in
  Arg.(value & opt int 64 & info [ "queue-cap" ] ~doc)

let deadline_arg =
  let doc =
    "Default cooperative per-job deadline in seconds (a request's own \
     deadline_s overrides it)."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~doc)

let hard_deadline_arg =
  let doc =
    "Per-job wall-clock deadline enforced from outside the worker \
     (SIGTERM, then SIGKILL after --grace)."
  in
  Arg.(value & opt (some float) None & info [ "hard-deadline" ] ~doc)

let grace_arg =
  let doc = "Seconds between SIGTERM and SIGKILL on a deadline overrun." in
  Arg.(value & opt float 1.0 & info [ "grace" ] ~doc)

let mem_limit_arg =
  let doc = "Per-worker major-heap cap in MB." in
  Arg.(value & opt (some int) None & info [ "mem-limit" ] ~doc)

let max_retries_arg =
  let doc = "Re-runs of a job whose worker crashed." in
  Arg.(value & opt int 1 & info [ "max-retries" ] ~doc)

let retry_hint_arg =
  let doc =
    "Retry-after hint (seconds) sent with shed responses before the \
     first completed job primes the service-time EWMA."
  in
  Arg.(value & opt float 0.1 & info [ "retry-hint" ] ~doc)

let backoff_arg =
  let doc = "Base of the crash-retry / worker-respawn backoff, seconds." in
  Arg.(value & opt float 0.05 & info [ "backoff" ] ~doc)

let max_backoff_arg =
  let doc = "Ceiling on any single backoff delay, seconds." in
  Arg.(value & opt float 5.0 & info [ "max-backoff" ] ~doc)

let breaker_threshold_arg =
  let doc = "Consecutive worker crashes that quarantine a model." in
  Arg.(value & opt int 3 & info [ "breaker-threshold" ] ~doc)

let breaker_cooloff_arg =
  let doc = "Seconds a tripped model breaker stays open before a probe." in
  Arg.(value & opt float 5.0 & info [ "breaker-cooloff" ] ~doc)

let write_timeout_arg =
  let doc =
    "Drop a client whose socket accepts no bytes for this long while \
     responses are pending (its jobs still finish and are journaled)."
  in
  Arg.(value & opt float 10.0 & info [ "write-timeout" ] ~doc)

let journal_arg =
  let doc =
    "Crash-safe completion journal (the intake file lives beside it); \
     starts fresh — use --resume to recover one."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~doc)

let resume_arg =
  let doc =
    "Recover this journal and its intake file: completed jobs feed the \
     result cache, accepted-but-unfinished jobs are re-run first."
  in
  Arg.(value & opt (some string) None & info [ "resume" ] ~doc)

let quiet_arg =
  let doc = "Suppress progress logging on stderr." in
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc)

let chaos_arg =
  let doc =
    "Arm the deterministic I/O fault plan \
     ACTION@NTH[:op=OP][:site=SUB][:persist] — e.g. \
     crash@3:site=journal.append, torn:9@0:site=intake, \
     enospc@2:persist. See Deept.Sysio."
  in
  let plan_c =
    Arg.conv
      ( (fun s ->
          match Deept.Sysio.plan_of_string s with
          | Ok p -> Ok p
          | Error e -> Error (`Msg e)),
        fun ppf p -> Format.pp_print_string ppf (Deept.Sysio.plan_to_string p)
      )
  in
  Arg.(value & opt (some plan_c) None & info [ "chaos" ] ~doc)

let serve data socket models jobs queue_cap retry_hint deadline hard_deadline
    grace mem_limit max_retries backoff max_backoff breaker_threshold
    breaker_cooloff write_timeout journal resume chaos quiet =
  Zoo.data_dir := data;
  (match chaos with Some p -> Deept.Sysio.arm p | None -> ());
  let log =
    if quiet then fun _ -> ()
    else fun s -> Printf.eprintf "certifyd: %s\n%!" s
  in
  let pool =
    Deept.Config.pool ~workers:jobs ?hard_deadline_s:hard_deadline
      ~grace_s:grace ?mem_limit_mb:mem_limit ~max_retries ~backoff_s:backoff
      ~max_backoff_s:max_backoff ()
  in
  (* Same oversubscription warning `certify` prints for its jobs x
     probes x domains product. A daemon worker runs 1 probe on 1 domain
     only until a refine=1 request lands on it: Brefine's split wave
     then fans the worker out to a pool of concurrent branch evaluators
     (forked processes or domains, by probe backend) sized exactly as
     Brefine.wave_of sizes its dpool from Config.default_refine — so
     the honest worst case is jobs x that fan-out, not jobs x 1 x 1. *)
  let avail = Domain.recommended_domain_count () in
  let refine_fanout =
    max 2 (min 16 Deept.Config.default_refine.Deept.Config.max_branches)
  in
  if jobs > avail then
    Printf.eprintf
      "certifyd: warning: %d daemon worker(s) x 1 probe(s) x 1 domain(s) \
       oversubscribes the %d recommended domain(s) on this machine\n%!"
      jobs avail
  else if jobs * refine_fanout > avail then
    Printf.eprintf
      "certifyd: warning: refine=1 requests fan each of the %d daemon \
       worker(s) out to %d branch evaluator(s) (%d total), which would \
       oversubscribe the %d recommended domain(s) on this machine\n%!"
      jobs refine_fanout (jobs * refine_fanout) avail;
  let journal, resume =
    match (resume, journal) with
    | Some p, _ -> (Some p, true)
    | None, j -> (j, false)
  in
  let o =
    Service.Server.opts ~pool ?deadline_s:deadline ~queue_cap
      ~retry_hint_s:retry_hint ~breaker_threshold
      ~breaker_cooloff_s:breaker_cooloff
      ~write_timeout_s:write_timeout ?journal ~resume ~log ~socket models
  in
  Service.Server.run o

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the certification daemon: warm models, pre-forked workers, \
          admission control, per-model circuit breakers, journal-backed \
          recovery.")
    Term.(
      const serve $ data_arg $ socket_arg $ models_arg $ jobs_arg
      $ queue_cap_arg $ retry_hint_arg $ deadline_arg $ hard_deadline_arg
      $ grace_arg
      $ mem_limit_arg $ max_retries_arg $ backoff_arg $ max_backoff_arg
      $ breaker_threshold_arg $ breaker_cooloff_arg $ write_timeout_arg
      $ journal_arg $ resume_arg $ chaos_arg $ quiet_arg)

(* --- request ---------------------------------------------------------- *)

let model_arg =
  let doc = "Zoo model to certify against." in
  Arg.(value & opt string "sst_3" & info [ "model"; "m" ] ~doc)

let index_arg =
  let doc = "First test-sentence index." in
  Arg.(value & opt int 0 & info [ "index"; "i" ] ~doc)

let sentence_arg =
  let doc = "Certify this sentence instead of a test-set one." in
  Arg.(value & opt (some string) None & info [ "sentence" ] ~doc)

let count_arg =
  let doc =
    "Pipeline this many requests (test sentences --index, --index+1, ...) \
     over one connection."
  in
  Arg.(value & opt int 1 & info [ "count"; "n" ] ~doc)

let word_arg =
  let doc = "Perturbed word position." in
  Arg.(value & opt int 1 & info [ "word"; "w" ] ~doc)

let norm_arg =
  let doc = "Perturbation norm: 1, 2 or inf." in
  let norm_c =
    Arg.conv
      ( (fun s ->
          match Service.Protocol.norm_of_name s with
          | Ok p -> Ok p
          | Error e -> Error (`Msg e)),
        fun ppf p ->
          Format.pp_print_string ppf (Service.Protocol.norm_name p) )
  in
  Arg.(value & opt norm_c Deept.Lp.L2 & info [ "norm"; "p" ] ~doc)

let radius_arg =
  let doc = "Perturbation radius." in
  Arg.(value & opt float 0.01 & info [ "radius"; "r" ] ~doc)

let verifier_arg =
  let doc = "Verifier: fast, precise or combined." in
  let verifier_c =
    Arg.conv
      ( (fun s ->
          match Service.Protocol.verifier_of_name s with
          | Ok v -> Ok v
          | Error e -> Error (`Msg e)),
        fun ppf v ->
          Format.pp_print_string ppf (Deept.Config.variant_name v) )
  in
  Arg.(value & opt verifier_c Deept.Config.Fast & info [ "verifier"; "v" ] ~doc)

let refine_arg =
  let doc =
    "Branch-and-bound refinement: on a precision failure the engine \
     splits the most influential noise symbols and re-certifies the \
     branches before giving up."
  in
  Arg.(value & flag & info [ "refine" ] ~doc)

let req_deadline_arg =
  let doc = "Cooperative per-job deadline for these requests, seconds." in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~doc)

let crash_arg =
  let doc = "Fault drill: the worker running each request exits uncleanly." in
  Arg.(value & flag & info [ "crash" ] ~doc)

let stall_arg =
  let doc = "Fault drill: the worker sleeps this long before certifying." in
  Arg.(value & opt (some float) None & info [ "stall" ] ~doc)

let timeout_arg =
  let doc = "Seconds to wait for the daemon's socket to accept." in
  Arg.(value & opt float 30.0 & info [ "connect-timeout" ] ~doc)

let retries_arg =
  let doc =
    "Total attempts per request (idempotent rids, jittered backoff \
     honouring the daemon's retry-after hints, reconnect on a dropped \
     connection). 1 = the legacy single-shot pipelined path."
  in
  Arg.(value & opt int 3 & info [ "retries" ] ~doc)

let retry_backoff_arg =
  let doc = "Initial client retry backoff, seconds (doubles, capped)." in
  Arg.(value & opt float 0.05 & info [ "retry-backoff" ] ~doc)

let print_response = function
  | Service.Protocol.Result r ->
      Printf.printf "[%d]%s %s@%s%s  attempts=%d retries=%d  (%.3fs)\n" r.id
        (match r.tag with Some t -> Printf.sprintf " tag=%d" t | None -> "")
        (Deept.Verdict.to_string r.verdict)
        r.rung
        (if r.cached then " [cached]" else "")
        r.attempts r.retries r.wall_s
  | Service.Protocol.Overloaded { tag; retry_after_s } ->
      Printf.printf "%soverloaded, retry after %.2fs\n"
        (match tag with Some t -> Printf.sprintf "tag=%d " t | None -> "")
        retry_after_s
  | Service.Protocol.Quarantined { tag; model; retry_after_s } ->
      Printf.printf "%smodel %s quarantined, retry after %.2fs\n"
        (match tag with Some t -> Printf.sprintf "tag=%d " t | None -> "")
        model retry_after_s
  | Service.Protocol.Stats_r s ->
      Printf.printf
        "uptime %.1fs  workers %d  queue %d  inflight %d\n\
         done %d  shed %d  cache %d/%d (size %d)  deaths %d%s\n\
         breakers: %s\n"
        s.uptime_s s.workers s.queue_depth s.inflight s.jobs_done s.shed
        s.cache_hits
        (s.cache_hits + s.cache_misses)
        s.cache_size s.worker_deaths
        (if s.draining then "  DRAINING" else "")
        (if s.breakers = "" then "(none tripped)" else s.breakers);
      Printf.printf "rungs: %s\n"
        (if s.rungs = "" then "(no computed jobs yet)" else s.rungs)
  | Service.Protocol.Error msg -> Printf.printf "error: %s\n" msg
  | Service.Protocol.Ok_ack -> Printf.printf "ok\n"

let request socket model index sentence count word p radius verifier refine
    deadline crash stall timeout retries retry_backoff =
  let mk k =
    let input =
      match sentence with
      | Some s -> Service.Protocol.Sentence s
      | None -> Service.Protocol.Index (index + k)
    in
    Service.Protocol.certify ~word ~p ~verifier ~refine ?deadline_s:deadline
      ~tag:(index + k) ~drill_crash:crash ?drill_stall_s:stall ~model ~radius
      input
  in
  let failures = ref 0 in
  let note r =
    print_response r;
    match r with Service.Protocol.Result _ -> () | _ -> incr failures
  in
  if retries <= 1 then begin
    (* single-shot: pipeline everything over one connection *)
    let conn = Service.Client.connect_retry ~timeout_s:timeout socket in
    for k = 0 to count - 1 do
      Service.Client.send conn (Service.Protocol.Certify (mk k))
    done;
    for _ = 1 to count do
      match Service.Client.recv conn with
      | Some r -> note r
      | None ->
          Printf.printf "daemon closed the connection\n";
          incr failures
    done;
    Service.Client.close conn
  end
  else begin
    let policy =
      Service.Client.policy ~max_attempts:retries ~backoff_s:retry_backoff
        ~connect_timeout_s:timeout ()
    in
    let s = Service.Client.session ~policy socket in
    for k = 0 to count - 1 do
      match Service.Client.call s (mk k) with
      | r -> note r
      | exception Failure msg ->
          Printf.printf "%s\n" msg;
          incr failures
    done;
    Service.Client.hangup s
  end;
  if !failures > 0 then exit 3

let request_cmd =
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Send certification request(s) to a running daemon and print the \
          responses. Exit status 3 if any request was not answered with a \
          result.")
    Term.(
      const request $ socket_arg $ model_arg $ index_arg $ sentence_arg
      $ count_arg $ word_arg $ norm_arg $ radius_arg $ verifier_arg
      $ refine_arg $ req_deadline_arg $ crash_arg $ stall_arg $ timeout_arg
      $ retries_arg $ retry_backoff_arg)

(* --- stats / shutdown ------------------------------------------------- *)

let stats socket timeout =
  let conn = Service.Client.connect_retry ~timeout_s:timeout socket in
  (match Service.Client.request conn Service.Protocol.Stats with
  | Some r -> print_response r
  | None -> Printf.printf "daemon closed the connection\n");
  Service.Client.close conn

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Print a running daemon's health counters.")
    Term.(const stats $ socket_arg $ timeout_arg)

let shutdown socket timeout =
  let conn = Service.Client.connect_retry ~timeout_s:timeout socket in
  (match Service.Client.request conn Service.Protocol.Shutdown with
  | Some r -> print_response r
  | None -> Printf.printf "daemon closed the connection\n");
  Service.Client.close conn

let shutdown_cmd =
  Cmd.v
    (Cmd.info "shutdown"
       ~doc:"Ask a running daemon to drain its queue and exit.")
    Term.(const shutdown $ socket_arg $ timeout_arg)

(* --- summary ---------------------------------------------------------- *)

(* The recovery drill's oracle: identical journals (same jobs, same
   verdicts, same rungs) print identical summaries, whether the daemon
   ran uninterrupted or was SIGKILLed and resumed. *)
let summary path =
  let entries = Deept.Journal.load path in
  let tally f =
    List.fold_left
      (fun acc e ->
        let k = f e in
        let n = try List.assoc k acc with Not_found -> 0 in
        (k, n + 1) :: List.remove_assoc k acc)
      [] entries
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Printf.printf "== summary (%d jobs) ==\n" (List.length entries);
  List.iter
    (fun (v, n) -> Printf.printf "  %-28s %d\n" v n)
    (tally (fun (e : Deept.Journal.entry) ->
         Deept.Verdict.to_string e.Deept.Journal.verdict));
  Printf.printf "by rung:\n";
  List.iter
    (fun (r, n) -> Printf.printf "  %-28s %d\n" r n)
    (tally (fun (e : Deept.Journal.entry) -> e.Deept.Journal.rung))

let summary_journal_arg =
  let doc = "Journal to summarize." in
  Arg.(required & opt (some string) None & info [ "journal" ] ~doc)

let summary_cmd =
  Cmd.v
    (Cmd.info "summary"
       ~doc:
         "Tally a journal by verdict and by rung (stable order, so two \
          equivalent runs diff clean).")
    Term.(const summary $ summary_journal_arg)

let () =
  let info =
    Cmd.info "certifyd"
      ~doc:"Crash-tolerant certification daemon over the DeepT engine."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ serve_cmd; request_cmd; stats_cmd; shutdown_cmd; summary_cmd ]))
