(* crashprobe — exhaustive crash-consistency checking for certifyd.

   The hand-picked kill points of the recovery drills prove the daemon
   survives the crashes someone thought of. This tool removes the
   "thought of": it runs a scripted workload against a recording daemon
   to enumerate every durability-relevant I/O operation (Deept.Sysio's
   counting mode), then replays the same workload once per operation
   with the process dying exactly there — plus every torn-write prefix
   of the final journal and intake lines, plus soft fault plans (short
   writes, EINTR storms, ENOSPC) that must be survived outright. After
   each simulated crash the daemon is restarted with --resume, every
   request is re-sent under its original idempotency rid, and the
   invariants are checked from the files:

     - no accepted job lost: every intaken id reaches the final journal;
     - no result delivered twice: a rid answered before the crash is
       answered after it by a cached replay with the identical verdict;
     - dedup is durable: at most one intake line per rid, unique ids;
     - the resume re-enqueue set is exactly intake minus journal;
     - the rebuilt result cache agrees with the final journal.

       crashprobe --data data --bounded        # CI-sized matrix
       crashprobe --data data --exhaustive     # every op, every prefix *)

open Cmdliner
module P = Service.Protocol
module Cl = Service.Client
module J = Deept.Journal
module V = Deept.Verdict
module Sysio = Deept.Sysio

type cfg = {
  data : string;
  model : string;
  jobs : int;
  dir : string;
  exhaustive : bool;
  verbose : bool;
}

let socket_of cfg = Filename.concat cfg.dir "probe.sock"
let journal_of cfg = Filename.concat cfg.dir "probe.jsonl"
let intake_of cfg = journal_of cfg ^ ".intake"
let trace_of cfg = Filename.concat cfg.dir "probe.trace"
let rlog_of cfg = Filename.concat cfg.dir "probe.resume.log"

let rid_of k = Printf.sprintf "probe-%d" k

(* Distinct radii per request: no cache hits, so every job really runs
   and the op sequence of the counting run is the reference. *)
let mk cfg k =
  P.certify ~tag:k ~rid:(rid_of k) ~model:cfg.model
    ~radius:(0.0005 *. float_of_int (k + 1))
    (P.Index k)

let failures : string list ref = ref []
let fail_inv label msg = failures := Printf.sprintf "%s: %s" label msg :: !failures
let check label cond msg = if not cond then fail_inv label msg

(* ---------------- daemon lifecycle ---------------- *)

type mode = Record | Chaos of Sysio.plan | Clean

let start_daemon cfg ~resume ~mode =
  match Unix.fork () with
  | 0 -> (
      try
        Zoo.data_dir := cfg.data;
        (match mode with
        | Record ->
            (* the recorder writes through Stdlib channels, not Sysio,
               so tracing does not perturb the op count *)
            let oc = open_out (trace_of cfg) in
            Sysio.record (fun e ->
                Printf.fprintf oc "%d %s %s %d\n" e.Sysio.index
                  (Sysio.op_name e.Sysio.eop) e.Sysio.esite e.Sysio.len;
                flush oc)
        | Chaos p -> Sysio.arm p
        | Clean -> ());
        let log =
          if resume then (
            let oc = open_out (rlog_of cfg) in
            fun s ->
              output_string oc (s ^ "\n");
              flush oc)
          else fun _ -> ()
        in
        Service.Server.run
          (Service.Server.opts
             ~pool:(Deept.Config.pool ~workers:1 ())
             ~journal:(journal_of cfg) ~resume ~log ~socket:(socket_of cfg)
             [ cfg.model ]);
        exit 0
      with
      | Unix.Unix_error (e, fn, arg) ->
          (* an injected errno (ENOSPC, EIO) escaping the loop is the
             intended loud death — distinguishable from a crash *)
          Printf.eprintf "crashprobe daemon: %s in %s(%s)\n%!"
            (Unix.error_message e) fn arg;
          exit 9
      | _ -> exit 1)
  | pid -> pid

(* A watchdog alarm SIGKILLs the current daemon if any phase wedges, so
   a chaos-induced hang fails the matrix instead of hanging CI. *)
let current_child = ref (-1)

let install_watchdog () =
  Sys.set_signal Sys.sigalrm
    (Sys.Signal_handle
       (fun _ ->
         if !current_child > 0 then
           try Unix.kill !current_child Sys.sigkill
           with Unix.Unix_error _ -> ()))

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | _, st -> st
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

let with_daemon cfg ~resume ~mode f =
  let pid = start_daemon cfg ~resume ~mode in
  current_child := pid;
  ignore (Unix.alarm 120);
  let r = try f () with e -> ignore (Unix.alarm 0); current_child := -1;
                             ignore (waitpid_retry pid); raise e in
  let st = waitpid_retry pid in
  ignore (Unix.alarm 0);
  current_child := -1;
  (r, st)

(* ---------------- workload phases ---------------- *)

(* Strictly sequential (send k, await k): the daemon's op order is then
   a deterministic function of the workload, which is what makes the
   recorded indices valid crash points. Returns the results delivered
   before the daemon died (all of them, on a clean run). *)
let run_workload cfg =
  match Cl.connect_retry ~timeout_s:30.0 (socket_of cfg) with
  | exception _ -> []
  | conn ->
      let delivered = ref [] in
      (try
         for k = 0 to cfg.jobs - 1 do
           Cl.send conn (P.Certify (mk cfg k));
           match Cl.recv conn with
           | Some (P.Result r) -> delivered := (k, r) :: !delivered
           | Some _ | None -> raise Exit
         done;
         ignore (Cl.request conn P.Shutdown)
       with _ -> ());
      Cl.close conn;
      List.rev !delivered

(* Re-send every request under its original rid; correlate by tag (a
   replay answers immediately, a re-attached live job on completion). *)
let resend_workload cfg conn =
  for k = 0 to cfg.jobs - 1 do
    Cl.send conn (P.Certify (mk cfg k))
  done;
  let seen = Hashtbl.create 8 in
  (try
     for _ = 1 to cfg.jobs do
       match Cl.recv conn with
       | Some (P.Result r) -> (
           match r.P.tag with
           | Some k -> Hashtbl.add seen k r
           | None -> raise Exit)
       | Some _ | None -> raise Exit
     done;
     ignore (Cl.request conn P.Shutdown)
   with _ -> ());
  seen

(* ---------------- file oracles ---------------- *)

let read_lines path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let rec go acc =
      match input_line ic with
      | l -> go (l :: acc)
      | exception End_of_file -> List.rev acc
    in
    let ls = go [] in
    close_in ic;
    List.filter (fun l -> String.trim l <> "") ls
  end

(* Well-formed intake records; a torn final line parses as nothing and
   is simply not counted (resume truncates it). *)
let intake_records cfg =
  List.filter_map
    (fun l -> Result.to_option (P.intake_of_json l))
    (read_lines (intake_of cfg))

let journal_ids cfg =
  if not (Sys.file_exists (journal_of cfg)) then []
  else List.map (fun e -> e.J.job) (J.load (journal_of cfg))

let resume_requeued cfg =
  List.fold_left
    (fun acc line ->
      match Scanf.sscanf line "resume: re-enqueued %d" (fun n -> n) with
      | n -> acc + n
      | exception Scanf.Scan_failure _ | exception End_of_file -> acc)
    0
    (read_lines (rlog_of cfg))

let uniq l = List.sort_uniq compare l
let diff a b = List.filter (fun x -> not (List.mem x b)) a

(* ---------------- the invariants ---------------- *)

let check_final_state cfg ~label ~phase1 ~seen2 =
  (* 1. liveness: every rid answered exactly once after resume *)
  for k = 0 to cfg.jobs - 1 do
    check label
      (List.length (Hashtbl.find_all seen2 k) = 1)
      (Printf.sprintf "rid %s answered %d time(s) after resume" (rid_of k)
         (List.length (Hashtbl.find_all seen2 k)))
  done;
  (* 2. exactly-once: a result delivered before the crash is replayed,
     not recomputed — same job id, same verdict, served as cached *)
  List.iter
    (fun (k, (r1 : P.result_r)) ->
      match Hashtbl.find_opt seen2 k with
      | None -> ()
      | Some (r2 : P.result_r) ->
          check label r2.P.cached
            (Printf.sprintf "rid %s was re-run, not replayed" (rid_of k));
          check label (r2.P.id = r1.P.id)
            (Printf.sprintf "rid %s changed id %d -> %d across the crash"
               (rid_of k) r1.P.id r2.P.id);
          check label
            (V.equal r2.P.verdict r1.P.verdict)
            (Printf.sprintf "rid %s verdict changed across the crash: %s -> %s"
               (rid_of k)
               (V.to_string r1.P.verdict)
               (V.to_string r2.P.verdict)))
    phase1;
  (* 3. durability bookkeeping on the final files *)
  let recs = intake_records cfg in
  let iids = List.map fst recs in
  let irids = List.filter_map (fun (_, c) -> c.P.rid) recs in
  let jids = journal_ids cfg in
  check label (uniq iids = List.sort compare iids) "duplicate id in intake";
  check label (uniq irids = List.sort compare irids)
    "a rid was intaken twice (dedup hole)";
  check label (uniq jids = List.sort compare jids) "duplicate id in journal";
  check label
    (diff (uniq iids) (uniq jids) = [])
    "accepted job lost: intaken but never journaled";
  (* 4. the rebuilt cache agrees with the journal it came from *)
  if Sys.file_exists (journal_of cfg) then begin
    let entries = J.load (journal_of cfg) in
    let cache = Service.Cache.create () in
    Service.Cache.absorb cache entries;
    let expect = Hashtbl.create 16 in
    List.iter
      (fun (e : J.entry) ->
        if String.length e.J.detail > 4 && String.sub e.J.detail 0 4 = "key=" then
          let key = String.sub e.J.detail 4 (String.length e.J.detail - 4) in
          if not (V.is_fault e.J.verdict) then Hashtbl.replace expect key e)
      entries;
    Hashtbl.iter
      (fun key (e : J.entry) ->
        match Service.Cache.find cache key with
        | None -> fail_inv label ("journaled key missing from rebuilt cache: " ^ key)
        | Some ce ->
            check label
              (V.equal ce.Service.Cache.verdict e.J.verdict
              && ce.Service.Cache.rung = e.J.rung
              && ce.Service.Cache.attempts = e.J.attempts)
              ("rebuilt cache disagrees with journal for " ^ key))
      expect
  end

(* One crash experiment: arm [plan], run the workload into the fault,
   snapshot the damage, resume, re-send, check. *)
let crash_run cfg ~label plan =
  if cfg.verbose then Printf.eprintf "crashprobe: %s\n%!" label;
  let phase1, st1 = with_daemon cfg ~resume:false ~mode:(Chaos plan) (fun () -> run_workload cfg) in
  (match st1 with
  | Unix.WSIGNALED _ | Unix.WEXITED 9 -> () (* died as planned *)
  | Unix.WEXITED 0 ->
      (* the plan never fired (e.g. a crash point past the run's ops) —
         tolerated, the workload just completed *)
      ()
  | st ->
      fail_inv label
        (Printf.sprintf "daemon died unexpectedly (%s)"
           (match st with
           | Unix.WEXITED n -> Printf.sprintf "exit %d" n
           | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
           | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n)));
  (* pre-resume snapshot feeds the re-enqueue oracle *)
  let i_pre = uniq (List.map fst (intake_records cfg)) in
  let p_pre = uniq (journal_ids cfg) in
  let seen2, st2 =
    with_daemon cfg ~resume:true ~mode:Clean (fun () ->
        let conn = Cl.connect_retry ~timeout_s:60.0 (socket_of cfg) in
        let seen = resend_workload cfg conn in
        Cl.close conn;
        seen)
  in
  check label (st2 = Unix.WEXITED 0)
    (Printf.sprintf "resume daemon did not drain cleanly (%s)"
       (match st2 with
       | Unix.WEXITED n -> Printf.sprintf "exit %d" n
       | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
       | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n));
  check label
    (resume_requeued cfg = List.length (diff i_pre p_pre))
    (Printf.sprintf "re-enqueued %d job(s), expected intake \\ journal = %d"
       (resume_requeued cfg)
       (List.length (diff i_pre p_pre)));
  check_final_state cfg ~label ~phase1 ~seen2

(* A soft plan must be survived outright: every job answered, clean
   drain, nothing lost. *)
let soft_run cfg ~label plan =
  if cfg.verbose then Printf.eprintf "crashprobe: %s\n%!" label;
  let phase1, st = with_daemon cfg ~resume:false ~mode:(Chaos plan) (fun () -> run_workload cfg) in
  check label (st = Unix.WEXITED 0) "daemon did not survive the soft plan";
  check label
    (List.length phase1 = cfg.jobs)
    (Printf.sprintf "only %d/%d jobs answered under the soft plan"
       (List.length phase1) cfg.jobs)

let clean_scratch cfg =
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ socket_of cfg; journal_of cfg; intake_of cfg; rlog_of cfg ]

(* ---------------- the matrix ---------------- *)

type ev = { index : int; site : string; len : int }

let read_trace cfg =
  List.map
    (fun l ->
      Scanf.sscanf l "%d %s %s %d" (fun index _op site len ->
          { index; site; len }))
    (read_lines (trace_of cfg))

let required_sites =
  [
    "journal.append"; "journal.fsync"; "journal.dir"; "intake.append";
    "intake.fsync"; "intake.dir"; "server.dispatch"; "server.client_send";
  ]

let crash_points events ~exhaustive =
  if exhaustive then List.map (fun e -> e.index) events
  else begin
    (* first and last occurrence of every distinct site: both edges of
       each durability window, at matrix size O(sites) not O(ops) *)
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun e ->
        match Hashtbl.find_opt tbl e.site with
        | None -> Hashtbl.replace tbl e.site (e.index, e.index)
        | Some (f, _) -> Hashtbl.replace tbl e.site (f, e.index))
      events;
    Hashtbl.fold (fun _ (f, l) acc -> f :: l :: acc) tbl []
    |> List.sort_uniq compare
  end

let torn_prefixes len ~exhaustive =
  if exhaustive then List.init len (fun k -> k)
  else List.sort_uniq compare [ 0; 1; len / 2; len - 1 ]

let run cfg =
  install_watchdog ();
  if not (Sys.file_exists cfg.dir) then Unix.mkdir cfg.dir 0o755;
  clean_scratch cfg;

  (* phase 0: enumerate the crash points with a recording daemon *)
  let baseline, st0 = with_daemon cfg ~resume:false ~mode:Record (fun () -> run_workload cfg) in
  check "baseline" (st0 = Unix.WEXITED 0) "recording run did not drain cleanly";
  check "baseline"
    (List.length baseline = cfg.jobs)
    "recording run did not answer every job";
  let events = read_trace cfg in
  check "baseline" (events <> []) "no durability operations recorded";
  let sites = uniq (List.map (fun e -> e.site) events) in
  List.iter
    (fun s ->
      check "coverage" (List.mem s sites)
        (Printf.sprintf "site %s never exercised by the workload" s))
    required_sites;

  (* phase 1: a SIGKILL at every (bounded: every interesting) op *)
  let points = crash_points events ~exhaustive:cfg.exhaustive in
  List.iter
    (fun i ->
      clean_scratch cfg;
      let site =
        match List.find_opt (fun e -> e.index = i) events with
        | Some e -> e.site
        | None -> "?"
      in
      crash_run cfg
        ~label:(Printf.sprintf "crash@%d(%s)" i site)
        (Sysio.plan ~nth:i Sysio.Crash))
    points;

  (* phase 2: every torn prefix of the final journal and intake lines *)
  let torn_targets =
    List.filter_map
      (fun site ->
        match
          List.fold_left
            (fun acc e -> if e.site = site then Some e else acc)
            None events
        with
        | Some e when e.len > 0 -> Some e
        | _ -> None)
      [ "journal.append"; "intake.append" ]
  in
  List.iter
    (fun e ->
      List.iter
        (fun k ->
          clean_scratch cfg;
          crash_run cfg
            ~label:(Printf.sprintf "torn:%d@%d(%s)" k e.index e.site)
            (Sysio.plan ~nth:e.index (Sysio.Torn k)))
        (torn_prefixes e.len ~exhaustive:cfg.exhaustive))
    torn_targets;

  (* phase 3: soft plans the daemon must survive without losing a byte *)
  clean_scratch cfg;
  soft_run cfg ~label:"short-writes(file)"
    (Sysio.plan ~op:Sysio.Write ~persist:true ~nth:0 (Sysio.Short 1));
  clean_scratch cfg;
  soft_run cfg ~label:"short-writes(socket)"
    (Sysio.plan ~op:Sysio.Send ~persist:true ~nth:0 (Sysio.Short 3));
  clean_scratch cfg;
  soft_run cfg ~label:"eintr-storm"
    (Sysio.plan ~nth:2 (Sysio.Eintr 5));
  (* ENOSPC: loud death, then full recovery *)
  (match
     List.fold_left
       (fun acc e -> if e.site = "journal.append" then Some e else acc)
       None events
   with
  | Some e ->
      clean_scratch cfg;
      crash_run cfg
        ~label:(Printf.sprintf "enospc@%d(journal.append)" e.index)
        (Sysio.plan ~nth:e.index ~site:"journal.append" (Sysio.Err Unix.ENOSPC))
  | None -> ());
  clean_scratch cfg;

  let torn_count =
    List.fold_left
      (fun acc e ->
        acc + List.length (torn_prefixes e.len ~exhaustive:cfg.exhaustive))
      0 torn_targets
  in
  match !failures with
  | [] ->
      Printf.printf
        "crashprobe: %d op(s) enumerated, %d crash point(s), %d torn \
         prefix(es), 4 soft plan(s): all invariants held\n"
        (List.length events) (List.length points) torn_count
  | fs ->
      List.iter (fun f -> Printf.eprintf "crashprobe: FAILED %s\n" f) fs;
      Printf.eprintf "crashprobe: %d invariant violation(s)\n" (List.length fs);
      exit 1

(* ---------------- CLI ---------------- *)

let data_arg =
  let doc = "Model directory." in
  Arg.(value & opt string "data" & info [ "data" ] ~doc)

let model_arg =
  let doc = "Zoo model for the scripted workload (small = fast matrix)." in
  Arg.(value & opt string "small_3" & info [ "model"; "m" ] ~doc)

let jobs_arg =
  let doc = "Certify requests in the scripted workload." in
  Arg.(value & opt int 3 & info [ "jobs"; "n" ] ~doc)

let dir_arg =
  let doc = "Scratch directory for sockets, journals and traces." in
  Arg.(
    value
    & opt string (Filename.concat (Filename.get_temp_dir_name ()) "crashprobe")
    & info [ "dir" ] ~doc)

let exhaustive_arg =
  let doc =
    "Crash at every enumerated operation and every torn-write prefix \
     (default: first/last op per site and 4 prefixes per line — the \
     CI-sized matrix)."
  in
  Arg.(value & flag & info [ "exhaustive" ] ~doc)

let verbose_arg =
  let doc = "Narrate each experiment on stderr." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let main data model jobs dir exhaustive verbose =
  if jobs < 1 then invalid_arg "crashprobe: --jobs < 1";
  run { data; model; jobs; dir; exhaustive; verbose }

let () =
  let info =
    Cmd.info "crashprobe"
      ~doc:
        "Enumerate certifyd's durability-relevant I/O operations and prove \
         crash consistency by simulating a crash at each one."
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            const main $ data_arg $ model_arg $ jobs_arg $ dir_arg
            $ exhaustive_arg $ verbose_arg)))
